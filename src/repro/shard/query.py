"""Query a sharded SAT without materialising the full table.

A :class:`TiledSat` holds the per-tile *local* SATs plus the resolved
carry vectors of the decoupled-lookback pass (``left`` row carries and
``top`` column carries per tile).  Any global SAT entry is then three
adds away::

    S[y, x] = local[r][c][yy, xx] + left[r][c][yy] + top[r][c][xx]

formed in the SAT's own dtype with CUDA wraparound, so every value is
bit-identical to the materialised table.

Rectangle queries (:meth:`TiledSat.rect_sums`) mirror
:func:`repro.sat.box_filter.rect_sums`: the carry-adjusted corner values
are first formed in the SAT dtype (wraparound and all — that *is* the
table's value), then widened to ``int64`` for integer SATs up to 32 bits
**before** the ``d - b - c + a`` combination, because the intermediate
differences can overflow a 32-bit accumulator even when the rectangle sum
itself fits — and near ``2^31``/``2^32`` the unwidened combination gives
silently wrong sums.  Results match the non-tiled helper exactly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["TiledSat"]


def _wrap(fn):
    with np.errstate(over="ignore", invalid="ignore"):
        return fn()


class TiledSat:
    """A sharded SAT: local tiles + resolved lookback carries.

    Parameters
    ----------
    shape:
        Global table shape ``(H, W)``.
    tile_shape:
        Nominal tile extent ``(th, tw)``; edge tiles may be smaller.
    locals_:
        ``{(r, c): local SAT}`` — each tile's own SAT, no carries.
    left:
        ``{(r, c): (h_rc,) vector}`` — the resolved exclusive row-chain
        prefix: sum of the image band left of the tile, per local row.
    top:
        ``{(r, c): (w_rc,) vector}`` — the resolved exclusive
        column-chain prefix: sum of everything above the tile up to each
        local column (the diagonal region folded in).
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        tile_shape: Tuple[int, int],
        locals_: Dict[Tuple[int, int], np.ndarray],
        left: Dict[Tuple[int, int], np.ndarray],
        top: Dict[Tuple[int, int], np.ndarray],
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.tile_shape = (int(tile_shape[0]), int(tile_shape[1]))
        self.locals = locals_
        self.left = left
        self.top = top
        self.grid = (
            -(-self.shape[0] // self.tile_shape[0]),
            -(-self.shape[1] // self.tile_shape[1]),
        )
        self.dtype = next(iter(locals_.values())).dtype

    # -- point queries ---------------------------------------------------
    def values(self, ys, xs) -> np.ndarray:
        """Gather ``S[ys, xs]`` (vectorised), bit-identical to the
        materialised table, without building it."""
        ys = np.asarray(ys)
        xs = np.asarray(xs)
        if np.any(ys < 0) or np.any(xs < 0) or np.any(
            ys >= self.shape[0]
        ) or np.any(xs >= self.shape[1]):
            raise ValueError(
                f"coordinates out of range for tiled SAT of shape {self.shape}"
            )
        th, tw = self.tile_shape
        rs, cs = ys // th, xs // tw
        out = np.empty(np.broadcast(ys, xs).shape, dtype=self.dtype)
        ysb, xsb = np.broadcast_arrays(ys, xs)
        rsb, csb = np.broadcast_arrays(rs, cs)
        for key in np.unique(
            rsb.astype(np.int64) * self.grid[1] + csb.astype(np.int64)
        ):
            r, c = int(key) // self.grid[1], int(key) % self.grid[1]
            m = (rsb == r) & (csb == c)
            yy, xx = ysb[m] - r * th, xsb[m] - c * tw
            loc = self.locals[(r, c)]
            lf = self.left[(r, c)]
            tp = self.top[(r, c)]
            # Same association order as the executor's fix-up, so float
            # tiles match the materialised table bit-for-bit too.
            out[m] = _wrap(lambda: (loc[yy, xx] + lf[yy]) + tp[xx])
        return out

    def value(self, y: int, x: int):
        """Scalar ``S[y, x]``."""
        return self.values(np.asarray([y]), np.asarray([x]))[0]

    # -- materialisation -------------------------------------------------
    def materialize(self) -> np.ndarray:
        """Assemble the full SAT table (the executor's output)."""
        th, tw = self.tile_shape
        out = np.empty(self.shape, dtype=self.dtype)
        for (r, c), loc in self.locals.items():
            lf, tp = self.left[(r, c)], self.top[(r, c)]
            out[r * th: r * th + loc.shape[0],
                c * tw: c * tw + loc.shape[1]] = _wrap(
                    lambda: (loc + lf[:, None]) + tp[None, :])
        return out

    # -- rectangle queries -----------------------------------------------
    def rect_sums(self, y0, x0, y1, x1) -> np.ndarray:
        """Vectorised inclusive-rectangle sums, Fig. 1's four corners.

        Integer SATs up to 32 bits widen the carry-adjusted corner values
        to ``int64`` *before* the ``d - b - c + a`` combination — matching
        :func:`repro.sat.box_filter.rect_sums` on the materialised table
        exactly, including near-``2^31``/``2^32`` rectangles spanning tile
        boundaries where combining in the SAT dtype would wrap.
        """
        y0 = np.asarray(y0)
        x0 = np.asarray(x0)
        y1 = np.asarray(y1)
        x1 = np.asarray(x1)
        if np.any(y0 > y1) or np.any(x0 > x1):
            raise ValueError("empty rectangle")
        h, w = self.shape
        if (np.any(y0 < 0) or np.any(x0 < 0)
                or np.any(y1 >= h) or np.any(x1 >= w)):
            raise ValueError(
                f"rectangle coordinates out of range for tiled SAT of shape "
                f"{self.shape}: rows must satisfy 0 <= y0 <= y1 <= {h - 1}, "
                f"cols 0 <= x0 <= x1 <= {w - 1}"
            )
        widen = (np.issubdtype(self.dtype, np.integer)
                 and self.dtype.itemsize <= 4)
        zero = np.int64(0) if widen else self.dtype.type(0)

        def corner(vals: np.ndarray) -> np.ndarray:
            return vals.astype(np.int64) if widen else vals

        d = corner(self.values(y1, x1))
        b = np.where(y0 > 0, corner(self.values(np.maximum(y0 - 1, 0), x1)),
                     zero)
        c = np.where(x0 > 0, corner(self.values(y1, np.maximum(x0 - 1, 0))),
                     zero)
        a = np.where(
            (y0 > 0) & (x0 > 0),
            corner(self.values(np.maximum(y0 - 1, 0), np.maximum(x0 - 1, 0))),
            zero,
        )
        return d - b - c + a

    def rect_sum(self, y0: int, x0: int, y1: int, x1: int):
        """Scalar rectangle sum; integer SATs combine exactly through
        Python ints like :func:`repro.sat.box_filter.rect_sum`."""
        out = self.rect_sums(
            np.asarray([y0]), np.asarray([x0]),
            np.asarray([y1]), np.asarray([x1]),
        )[0]
        if np.issubdtype(self.dtype, np.integer):
            return int(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TiledSat(shape={self.shape}, grid={self.grid}, "
                f"tile={self.tile_shape}, dtype={self.dtype})")
