"""Decoupled-lookback tile-status descriptors (LightScan-style).

The sharded executor propagates inter-tile carries with the single-pass
*chained scan* protocol instead of a second full sweep: every tile owns a
descriptor slot in a :class:`DescriptorChain`, with one of three states:

* ``X`` — invalid: the tile has not produced anything yet;
* ``A`` — *aggregate* available: the tile's own contribution (its carry
  vector) is published, but the sum of everything before it is not;
* ``P`` — inclusive *prefix* available: the sum of this tile's aggregate
  and every predecessor's is published.

To resolve its exclusive prefix, a tile opens a *lookback window* over its
predecessors, walking backwards and accumulating ``A`` aggregates until a
``P`` short-circuits the walk (one hop in the common case).  Hitting an
``X`` means a predecessor has not run yet — the lookback is *deferred* and
retried when new publishes land, exactly the spin the GPU protocol hides
in a polling loop.  The chain records every step, window length and
deferral so tests and benchmarks can assert single-pass behaviour.

Values are numpy carry vectors (right-edge columns for row chains,
adjusted bottom edges for column chains, whole frames for temporal series
chains); integer addition wraps like the CUDA kernels
(:func:`repro.dtypes.accumulate_cast` semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["X", "A", "P", "STATUS_NAMES", "LookbackStats", "DescriptorChain"]

#: Tile-status flags, named after the decoupled-lookback literature.
X, A, P = 0, 1, 2
STATUS_NAMES = {X: "X", A: "A", P: "P"}


def _wrap_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise add with CUDA integer wraparound semantics."""
    with np.errstate(over="ignore", invalid="ignore"):
        return a + b


@dataclass
class LookbackStats:
    """Counters one chain accumulates; summed into the shard report."""

    #: Descriptor slots inspected across all lookback attempts.
    steps: int = 0
    #: Successful window resolutions.
    resolved: int = 0
    #: Attempts that hit an ``X`` predecessor and had to be retried.
    deferred: int = 0
    #: Longest successful window (slots walked before a ``P``).
    max_window: int = 0
    #: Window lengths of every successful resolution.
    windows: List[int] = field(default_factory=list)

    def merge(self, other: "LookbackStats") -> None:
        self.steps += other.steps
        self.resolved += other.resolved
        self.deferred += other.deferred
        self.max_window = max(self.max_window, other.max_window)
        self.windows.extend(other.windows)

    def to_dict(self) -> dict:
        n = len(self.windows)
        return {
            "steps": self.steps,
            "resolved": self.resolved,
            "deferred": self.deferred,
            "max_window": self.max_window,
            "mean_window": (sum(self.windows) / n) if n else 0.0,
        }


class DescriptorChain:
    """One chain of tile descriptors with decoupled-lookback resolution.

    ``n`` slots, each holding ``(status, aggregate, prefix)``.  Slot 0 has
    no predecessors: publishing its aggregate immediately promotes it to
    ``P`` with ``prefix == aggregate``.
    """

    def __init__(self, n: int, name: str = ""):
        if n < 1:
            raise ValueError("a descriptor chain needs at least one slot")
        self.n = n
        self.name = name
        self.status: List[int] = [X] * n
        self.aggregate: List[Optional[np.ndarray]] = [None] * n
        self.prefix: List[Optional[np.ndarray]] = [None] * n
        self.stats = LookbackStats()

    # -- publishing ------------------------------------------------------
    def publish_aggregate(self, i: int, agg: np.ndarray) -> None:
        """Publish slot ``i``'s own contribution (``X`` → ``A``/``P``)."""
        if self.status[i] != X:
            raise RuntimeError(
                f"chain {self.name!r} slot {i} already published "
                f"({STATUS_NAMES[self.status[i]]})"
            )
        self.aggregate[i] = agg
        if i == 0:
            self.prefix[i] = agg
            self.status[i] = P
        else:
            self.status[i] = A

    def publish_prefix(self, i: int, prefix: np.ndarray) -> None:
        """Publish slot ``i``'s inclusive prefix (``A`` → ``P``)."""
        if self.status[i] != A:
            raise RuntimeError(
                f"chain {self.name!r} slot {i} must be A to promote, is "
                f"{STATUS_NAMES[self.status[i]]}"
            )
        self.prefix[i] = prefix
        self.status[i] = P

    # -- lookback --------------------------------------------------------
    def lookback(self, i: int) -> Optional[np.ndarray]:
        """Resolve slot ``i``'s *exclusive* prefix, or ``None`` to defer.

        Walks ``i-1, i-2, ...`` accumulating ``A`` aggregates until a
        ``P`` slot terminates the window.  On success the slot is
        promoted to ``P`` (its inclusive prefix is the exclusive prefix
        plus its own aggregate) and the exclusive prefix is returned.
        Returns ``None`` — deferring the tile — if any slot in the window
        is still ``X``.  Slot 0 resolves to a zero exclusive prefix.
        """
        if self.status[i] == P:
            # Already resolved (slot 0, or a retried tile raced a retry).
            agg = self.aggregate[i]
            if i == 0:
                return np.zeros_like(agg)
            with np.errstate(over="ignore", invalid="ignore"):
                return self.prefix[i] - agg
        if self.status[i] == X:
            raise RuntimeError(
                f"chain {self.name!r} slot {i} must publish its aggregate "
                f"before looking back"
            )
        acc: Optional[np.ndarray] = None
        window = 0
        j = i - 1
        while True:
            self.stats.steps += 1
            window += 1
            s = self.status[j]
            if s == X:
                self.stats.deferred += 1
                return None
            if s == A:
                acc = self.aggregate[j] if acc is None else \
                    _wrap_add(self.aggregate[j], acc)
                j -= 1
                continue
            # P: short-circuit — everything before j is folded in already.
            exclusive = self.prefix[j] if acc is None else \
                _wrap_add(self.prefix[j], acc)
            break
        self.stats.resolved += 1
        self.stats.windows.append(window)
        self.stats.max_window = max(self.stats.max_window, window)
        self.publish_prefix(i, _wrap_add(exclusive, self.aggregate[i]))
        return exclusive

    # -- introspection ---------------------------------------------------
    def resolved(self) -> bool:
        """True when every slot has reached ``P``."""
        return all(s == P for s in self.status)

    def statuses(self) -> str:
        """Compact state string, e.g. ``"PPAX"`` — debugging/tests."""
        return "".join(STATUS_NAMES[s] for s in self.status)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DescriptorChain({self.name!r}, {self.statuses()})"
