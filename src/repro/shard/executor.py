"""Sharded SAT executor: tiles, devices, streams, single-pass carries.

The executor turns one oversized image into a tile grid (via
:class:`~repro.engine.scheduler.TileScheduler`), runs every tile's *local*
SAT on its placed simulated device, and resolves inter-tile carries with
the decoupled-lookback protocol of :mod:`repro.shard.descriptor` —
**one** carry fix-up per tile, never a second full sweep.

Carry decomposition
-------------------
For a tile starting at ``(R0, C0)`` the global table splits into three
regions::

    S[y, x] = local[y-R0, x-C0]          # the tile's own SAT
            + left[y-R0]                 # band rows R0..y, columns < C0
            + top[x-C0]                  # all rows < R0, columns <= x

``left`` is the *row chain*: each tile publishes its right-edge column
``local[:, -1]`` as the chain aggregate; the exclusive lookback prefix is
exactly ``left``.  ``top`` is the *column chain*: each tile publishes its
*adjusted* bottom edge ``local[-1, :] + left[-1]`` — the band sum over
**all** columns up to each local column, which folds the diagonal corner
region into the column chain.  That makes the column aggregate depend on
the row prefix: a genuine two-stage dependency the lookback protocol
resolves tile-by-tile in kernel-completion order, deferring (status
``X``) when a predecessor has not landed yet.

Cost model
----------
Every tile contributes one H2D copy, one kernel op (its local SAT's
modeled time) and one carry op (the fix-up's memory traffic), plus D2D
copies when an immediate predecessor lives on another device.  Ops land
on real :mod:`repro.gpusim.stream` queues: kernels serialise on the SM
engine, copies and carries on the copy/fix-up engine, so the
:class:`~repro.gpusim.stream.DeviceSet` report shows how much carry work
hid behind kernel execution.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dtypes import TypePair, parse_pair
from ..engine.scheduler import TilePlan, TileScheduler
from ..exec.registry import get_kernel_spec
from ..gpusim.device import get_device, parse_device_set
from ..gpusim.stream import D2D_ALPHA, D2D_BW, H2D_BW, DeviceSet, SimDevice
from ..obs.context import timeline_add
from ..obs.metrics import get_metrics
from ..obs.trace import resolve_tracer
from ..sat.common import SatRun
from .descriptor import DescriptorChain, LookbackStats
from .query import TiledSat

__all__ = [
    "DEFAULT_THRESHOLD_ELEMS",
    "ShardConfig",
    "ShardRun",
    "ShardSeriesRun",
    "sharded_sat",
    "sharded_sat_series",
    "TiledSharder",
]

#: Images strictly larger than this many elements shard by default —
#: 2048x2048 (the largest single-launch shape the benchmarks exercise)
#: sits exactly on the threshold and does *not* shard.
DEFAULT_THRESHOLD_ELEMS = 1 << 22

#: Environment knobs (all optional).
THRESHOLD_ENV = "REPRO_SHARD_THRESHOLD"
TILE_ENV = "REPRO_SHARD_TILE"
DEVICES_ENV = "REPRO_SHARD_DEVICES"
STREAMS_ENV = "REPRO_SHARD_STREAMS"
PLACEMENT_ENV = "REPRO_SHARD_PLACEMENT"


def _wrap_add(a, b):
    with np.errstate(over="ignore", invalid="ignore"):
        return a + b


def _parse_tile(spec) -> Tuple[int, int]:
    if isinstance(spec, str):
        h, _, w = spec.lower().partition("x")
        return (int(h), int(w or h))
    h, w = spec
    return (int(h), int(w))


@dataclass(frozen=True)
class ShardConfig:
    """Everything the sharded executor needs beyond the SAT call itself."""

    #: ``None`` (the default) means planner-derived per image:
    #: :func:`repro.plan.shard_tile_shape` picks 1024^2 tiles for images
    #: with a deep enough grid and 512^2 below that, so every device
    #: keeps enough tiles in flight to overlap carries with compute.
    tile_shape: Optional[Tuple[int, int]] = None
    #: Any :func:`~repro.gpusim.device.parse_device_set` spelling.
    devices: object = "2xP100"
    streams_per_device: int = 2
    placement: str = "roundrobin"
    #: ``sat()`` shards transparently strictly above this element count.
    threshold_elems: int = DEFAULT_THRESHOLD_ELEMS

    @classmethod
    def from_env(cls, **overrides) -> "ShardConfig":
        """Defaults < environment < explicit overrides.

        When no threshold is pinned (env or override), it is derived from
        the configured pipeline depth via
        :func:`repro.plan.shard_threshold_elems` — for the default two
        P100s with two streams of 1024^2 tiles that reproduces the
        historical 2^22 constant exactly.
        """
        vals = {}
        if THRESHOLD_ENV in os.environ:
            vals["threshold_elems"] = int(os.environ[THRESHOLD_ENV])
        if TILE_ENV in os.environ:
            vals["tile_shape"] = _parse_tile(os.environ[TILE_ENV])
        if DEVICES_ENV in os.environ:
            vals["devices"] = os.environ[DEVICES_ENV]
        if STREAMS_ENV in os.environ:
            vals["streams_per_device"] = int(os.environ[STREAMS_ENV])
        if PLACEMENT_ENV in os.environ:
            vals["placement"] = os.environ[PLACEMENT_ENV]
        vals.update({k: v for k, v in overrides.items() if v is not None})
        if vals.get("tile_shape") is not None:
            vals["tile_shape"] = _parse_tile(vals["tile_shape"])
        if "threshold_elems" not in vals:
            # Late import: repro.plan depends on repro.engine, which this
            # module feeds.
            from ..plan.planner import shard_threshold_elems

            vals["threshold_elems"] = shard_threshold_elems(
                len(parse_device_set(vals.get("devices", cls.devices))),
                vals.get("streams_per_device", cls.streams_per_device),
                vals.get("tile_shape") or (1024, 1024),
            )
        return cls(**vals)

    def resolved_tile(self, image_shape: Tuple[int, int]) -> Tuple[int, int]:
        """The tile to use for ``image_shape``: the pinned one, or the
        planner's recommendation when ``tile_shape`` is ``None``."""
        if self.tile_shape is not None:
            return self.tile_shape
        from ..plan.planner import shard_tile_shape

        return shard_tile_shape(image_shape)

    @classmethod
    def coerce(cls, shard, device=None) -> "ShardConfig":
        """Normalise a ``sat(shard=...)`` value into a config.

        ``None``/``True`` mean env-configured defaults; a mapping supplies
        field overrides; a :class:`ShardConfig` passes through.  When the
        caller pinned a single ``device=`` and no device set was
        configured anywhere, the set becomes two of that device.
        """
        if isinstance(shard, cls):
            return shard
        over = {}
        if isinstance(shard, dict):
            over = dict(shard)
        elif shard not in (None, True, False):
            raise TypeError(
                f"shard= must be None, a bool, a dict or a ShardConfig, got "
                f"{type(shard).__name__}"
            )
        if (device is not None and "devices" not in over
                and DEVICES_ENV not in os.environ):
            over["devices"] = f"2x{get_device(device).name}"
        return cls.from_env(**over)

    @property
    def n_devices(self) -> int:
        return len(parse_device_set(self.devices))


@dataclass
class ShardRun(SatRun):
    """A sharded run: a :class:`SatRun` plus the shard report and the
    queryable tiled view.  ``time_s`` is the modeled *makespan* of the
    device set (overlap included), not the sum of kernel times."""

    report: Dict[str, object] = field(default_factory=dict)
    tiled: Optional[TiledSat] = None

    @property
    def time_s(self) -> Optional[float]:
        return self.report.get("makespan_s")


@dataclass
class ShardSeriesRun:
    """A streamed series run: per-frame outputs plus the fleet report."""

    outputs: List[np.ndarray]
    report: Dict[str, object] = field(default_factory=dict)
    algorithm: str = ""
    pair: str = ""
    backend: str = "gpusim"
    temporal: bool = False

    @property
    def time_s(self) -> Optional[float]:
        return self.report.get("makespan_s")


# Plan memoisation shared across calls: one scheduler per (tile, policy),
# so streaming series and repeated shards reuse their tile plans.
_SCHEDULERS: Dict[Tuple[Tuple[int, int], str], TileScheduler] = {}


def _scheduler_for(cfg: ShardConfig) -> TileScheduler:
    key = (cfg.tile_shape, cfg.placement)
    sched = _SCHEDULERS.get(key)
    if sched is None:
        sched = _SCHEDULERS[key] = TileScheduler(
            tile_shape=cfg.tile_shape, policy=cfg.placement
        )
    return sched


def _resolve_pair(image: np.ndarray, pair) -> TypePair:
    if pair is None:
        from ..sat.api import _resolve_pair as resolve

        return resolve(image, None)
    return parse_pair(pair)


def _kernel_cost_s(run: SatRun, shape: Tuple[int, int], tp: TypePair,
                   dev: SimDevice, n_passes: int) -> float:
    """Modeled duration of one tile's local SAT on the timeline.

    Backends with launch stats report their own modeled time; unmodeled
    backends (``host``) fall back to a bandwidth-bound estimate so the
    schedule stays meaningful.
    """
    t = run.time_s
    if t is not None and t > 0:
        return t
    h, w = shape
    traffic = h * w * (tp.input.size + 2 * n_passes * tp.output.size)
    return n_passes * dev.spec.launch_overhead_s + traffic / dev.spec.global_bw


def sharded_sat(
    image: np.ndarray,
    pair=None,
    algorithm: str = "brlt_scanrow",
    device=None,
    backend=None,
    config=None,
    shard=None,
    **opts,
) -> ShardRun:
    """Tiled SAT over a set of simulated devices, single-pass carries.

    Output is identical to a full-image run: bit-for-bit for integer
    accumulators (wraparound addition is associative), to float summation
    reordering for ``32f``/``64f`` pairs.  See :class:`ShardConfig` for
    the ``shard=`` knobs and module docs for the carry protocol.
    """
    from ..sat.api import ALGORITHMS  # late: avoid import cycles

    if image.ndim != 2:
        raise ValueError(f"sharded SAT input must be 2-D, got {image.shape}")
    cfg = ShardConfig.coerce(shard, device=device)
    cfg = replace(cfg, tile_shape=cfg.resolved_tile(image.shape))
    tp = _resolve_pair(image, pair)
    spec = get_kernel_spec(algorithm)  # sharding needs a spec'd algorithm
    n_passes = len(spec.passes)
    fn = ALGORITHMS[algorithm]

    sched = _scheduler_for(cfg)
    dset = DeviceSet.from_spec(cfg.devices, cfg.streams_per_device)
    plan = sched.plan(image.shape, len(dset), cfg.streams_per_device)
    nr, nc = plan.grid
    tracer = resolve_tracer(None)

    # -- phase 1: local SATs, one kernel + one H2D copy per tile ---------
    tiles: Dict[Tuple[int, int], np.ndarray] = {}
    kops: Dict[Tuple[int, int], object] = {}
    launches = []
    in_size = tp.input.size
    acc_size = tp.output.size
    for p in plan.placements:
        dev = dset.device(p.device)
        sub = np.ascontiguousarray(
            image[p.row0: p.row0 + p.h, p.col0: p.col0 + p.w]
        )
        cop = dev.enqueue(
            p.stream, "copy", (p.h * p.w * in_size) / H2D_BW,
            f"h2d[{p.r},{p.c}]", tile=(p.r, p.c),
            bytes=p.h * p.w * in_size,
        )
        if tracer:
            cm = tracer.span(
                f"shard.tile[{p.r},{p.c}]", category="shard",
                device=dev.name, stream=f"{dev.name}/s{p.stream}",
                algorithm=algorithm,
            )
        else:
            from contextlib import nullcontext

            cm = nullcontext()
        with cm:
            run = fn(sub, pair=tp, device=dev.spec.name, backend=backend,
                     config=config, **opts)
        tiles[(p.r, p.c)] = run.output
        launches.extend(run.launches)
        kops[(p.r, p.c)] = dev.enqueue(
            p.stream, "kernel",
            _kernel_cost_s(run, (p.h, p.w), tp, dev, n_passes),
            f"sat[{p.r},{p.c}]", deps=[cop],
            tile=(p.r, p.c), passes=n_passes,
        )

    # -- phase 2: decoupled-lookback carry resolution --------------------
    rows = [DescriptorChain(nc, name=f"row{r}") for r in range(nr)]
    cols = [DescriptorChain(nr, name=f"col{c}") for c in range(nc)]
    left: Dict[Tuple[int, int], np.ndarray] = {}
    top: Dict[Tuple[int, int], np.ndarray] = {}
    out = np.empty(image.shape, dtype=tp.output.np_dtype)
    carry_ops = 0
    copy_d2d = 0

    def finalize(p) -> None:
        nonlocal carry_ops, copy_d2d
        key = (p.r, p.c)
        fixed = _wrap_add(
            _wrap_add(tiles[key], left[key][:, None]), top[key][None, :]
        )
        out[p.row0: p.row0 + p.h, p.col0: p.col0 + p.w] = fixed
        dev = dset.device(p.device)
        cstream = (p.stream + 1) % len(dev.streams)
        deps = [kops[key]]
        for pr, pc, vec_len in (
            (p.r, p.c - 1, p.h), (p.r - 1, p.c, p.w)
        ):
            if pr < 0 or pc < 0:
                continue
            pred = plan.at(pr, pc)
            deps.append(kops[(pr, pc)])
            if pred.device != p.device:
                copy_d2d += 1
                deps.append(dev.enqueue(
                    cstream, "copy",
                    D2D_ALPHA + (vec_len * acc_size) / D2D_BW,
                    f"d2d[{pr},{pc}->{p.r},{p.c}]",
                    deps=[kops[(pr, pc)]],
                    bytes=vec_len * acc_size,
                ))
        carry_ops += 1
        dev.enqueue(
            cstream, "carry", (2 * p.h * p.w * acc_size) / dev.spec.global_bw,
            f"carry[{p.r},{p.c}]", deps=deps, tile=(p.r, p.c),
        )

    def attempt(p) -> bool:
        """Advance one tile; True when its carries fully resolved."""
        key = (p.r, p.c)
        if key not in left:
            excl = rows[p.r].lookback(p.c)
            if excl is None:
                return False
            left[key] = excl
            # Adjusted bottom edge: band sum over *all* columns <= x.
            cols[p.c].publish_aggregate(
                p.r, _wrap_add(tiles[key][-1, :], excl[-1])
            )
        exclt = cols[p.c].lookback(p.r)
        if exclt is None:
            return False
        top[key] = exclt
        finalize(p)
        return True

    # Tiles publish and resolve in modeled kernel-completion order — the
    # order real devices would race through the descriptor array.  A tile
    # finishing before its predecessors hits X and parks on the retry
    # queue until later publishes unblock it.
    completion = sorted(
        plan.placements, key=lambda p: (kops[(p.r, p.c)].end_s, p.order)
    )
    pending: List[object] = []
    for p in completion:
        rows[p.r].publish_aggregate(p.c, tiles[(p.r, p.c)][:, -1])
        pending.append(p)
        progress = True
        while progress and pending:
            progress = False
            still = []
            for q in pending:
                if attempt(q):
                    progress = True
                else:
                    still.append(q)
            pending = still
    if pending:  # pragma: no cover - protocol invariant
        raise RuntimeError(
            f"carry resolution stalled with {len(pending)} tiles pending"
        )

    # -- report / metrics ------------------------------------------------
    row_stats, col_stats = LookbackStats(), LookbackStats()
    for ch in rows:
        row_stats.merge(ch.stats)
    for ch in cols:
        col_stats.merge(ch.stats)
    rep = dset.report()
    kb, cb, pb = rep["kernel_busy_s"], rep["carry_busy_s"], rep["copy_busy_s"]
    rep.update({
        "algorithm": algorithm,
        "pair": tp.name,
        "image_shape": list(image.shape),
        "tile_shape": list(plan.tile_shape),
        "grid": list(plan.grid),
        "n_tiles": plan.n_tiles,
        "placement": plan.policy,
        "kernel_ops": plan.n_tiles,
        "carry_ops": carry_ops,
        "h2d_ops": plan.n_tiles,
        "d2d_ops": copy_d2d,
        "full_sweeps": 0,
        "carry_passes": 1,
        "launches": len(launches),
        "retries": row_stats.deferred + col_stats.deferred,
        "lookback": {"row": row_stats.to_dict(), "col": col_stats.to_dict()},
        "plan_cache": {"hits": sched.plan_hits, "misses": sched.plan_misses},
        "carry_overhead_frac": (cb + pb) / (kb + cb + pb) if kb else 0.0,
        "tiles_per_s": (plan.n_tiles / rep["makespan_s"]
                        if rep["makespan_s"] else 0.0),
    })
    m = get_metrics()
    m.counter("shard.runs", algorithm=algorithm).inc()
    m.counter("shard.tiles", algorithm=algorithm).inc(plan.n_tiles)
    m.counter("shard.carry_ops").inc(carry_ops)
    # Serving-timeline attribution: modeled carry + copy time a sharded
    # request spent off the kernel path (no-op outside a serve request).
    timeline_add("shard_carry_us", (cb + pb) * 1e6)
    timeline_add("shard_kernel_us", kb * 1e6)
    m.counter("shard.lookback.steps").inc(row_stats.steps + col_stats.steps)
    m.counter("shard.lookback.deferred").inc(
        row_stats.deferred + col_stats.deferred
    )
    if tracer:
        for d in dset:
            tracer.event(
                f"shard.device.{d.name}", category="shard",
                kernel_busy_s=d.busy_s("kernel"),
                carry_busy_s=d.busy_s("carry") + d.busy_s("copy"),
                n_ops=len(d.ops),
            )

    tiled = TiledSat(image.shape, plan.tile_shape, tiles, left, top)
    return ShardRun(
        output=out,
        launches=launches,
        algorithm=algorithm,
        device=",".join(dset.names),
        pair=tp.name,
        backend="gpusim" if launches else "host",
        report=rep,
        tiled=tiled,
    )


def sharded_sat_series(
    frames,
    pair=None,
    algorithm: str = "brlt_scanrow",
    temporal: bool = False,
    device=None,
    backend=None,
    config=None,
    shard=None,
    **opts,
) -> ShardSeriesRun:
    """Streamed SAT over a frame series across the device set.

    Frames round-robin across devices with H2D copies pipelined on
    alternating streams, so copies and carry work overlap kernels.  With
    ``temporal=True`` the run returns the *integral video* — frame ``t``'s
    output is the elementwise (wraparound) sum of SATs of frames
    ``0..t`` — propagated along the series with the same
    decoupled-lookback descriptor chain the tile executor uses (Copik's
    parallel prefix over arbitrarily long series).
    """
    from ..sat.api import ALGORITHMS  # late: avoid import cycles

    if hasattr(frames, "ndim") and getattr(frames, "ndim", 0) == 3:
        frames = [frames[i] for i in range(frames.shape[0])]
    frames = list(frames)
    if not frames:
        raise ValueError("empty frame series")
    shape = frames[0].shape
    for f in frames:
        if f.shape != shape:
            raise ValueError("all series frames must share one shape")
    cfg = ShardConfig.coerce(shard, device=device)
    tp = _resolve_pair(frames[0], pair)
    spec = get_kernel_spec(algorithm)
    n_passes = len(spec.passes)
    fn = ALGORITHMS[algorithm]
    dset = DeviceSet.from_spec(cfg.devices, cfg.streams_per_device)
    tracer = resolve_tracer(None)

    in_size, acc_size = tp.input.size, tp.output.size
    n = len(frames)
    outputs: List[Optional[np.ndarray]] = [None] * n
    kops = []
    placements = []  # (frame index, device index, stream)
    seq = [0] * len(dset)
    for t, frame in enumerate(frames):
        di = t % len(dset)
        dev = dset.device(di)
        stream = seq[di] % len(dev.streams)
        seq[di] += 1
        cop = dev.enqueue(
            stream, "copy", (frame.size * in_size) / H2D_BW,
            f"h2d[f{t}]", frame=t, bytes=frame.size * in_size,
        )
        run = fn(frame, pair=tp, device=dev.spec.name, backend=backend,
                 config=config, **opts)
        outputs[t] = run.output
        kops.append(dev.enqueue(
            stream, "kernel",
            _kernel_cost_s(run, frame.shape, tp, dev, n_passes),
            f"sat[f{t}]", deps=[cop], frame=t,
        ))
        placements.append((t, di, stream))

    chain = None
    if temporal:
        chain = DescriptorChain(n, name="series")
        completion = sorted(range(n), key=lambda t: (kops[t].end_s, t))
        pending: List[int] = []
        for t in completion:
            chain.publish_aggregate(t, outputs[t])
            pending.append(t)
            progress = True
            while progress and pending:
                progress = False
                still = []
                for q in pending:
                    if chain.lookback(q) is None:
                        still.append(q)
                        continue
                    progress = True
                    tq, di, stream = placements[q]
                    dev = dset.device(di)
                    cstream = (stream + 1) % len(dev.streams)
                    deps = [kops[q]]
                    if q > 0:
                        deps.append(kops[q - 1])
                        if placements[q - 1][1] != di:
                            deps.append(dev.enqueue(
                                cstream, "copy",
                                D2D_ALPHA + (outputs[q].size * acc_size)
                                / D2D_BW,
                                f"d2d[f{q - 1}->f{q}]", deps=[kops[q - 1]],
                            ))
                    dev.enqueue(
                        cstream, "carry",
                        (2 * outputs[q].size * acc_size)
                        / dev.spec.global_bw,
                        f"carry[f{q}]", deps=deps, frame=q,
                    )
                pending = still
        outputs = [chain.prefix[t] for t in range(n)]

    rep = dset.report()
    rep.update({
        "algorithm": algorithm,
        "pair": tp.name,
        "frames": n,
        "frame_shape": list(shape),
        "temporal": temporal,
        "frames_per_s": (n / rep["makespan_s"] if rep["makespan_s"] else 0.0),
        "full_sweeps": 0,
        "carry_passes": 1 if temporal else 0,
        "lookback": chain.stats.to_dict() if chain else None,
    })
    m = get_metrics()
    m.counter("shard.series.frames", algorithm=algorithm).inc(n)
    if tracer:
        tracer.event("shard.series", category="shard", frames=n,
                     temporal=temporal, makespan_s=rep["makespan_s"])
    return ShardSeriesRun(
        outputs=outputs, report=rep, algorithm=algorithm, pair=tp.name,
        backend="gpusim", temporal=temporal,
    )


class TiledSharder:
    """The registry hook :func:`repro.sat.api.sat` consults.

    ``wants`` decides transparent sharding; ``run`` executes it.  The
    object is stateless — configuration comes from the ``shard=`` value
    and the environment on every call.
    """

    name = "tiled"

    def wants(self, shape: Tuple[int, int], shard=None) -> bool:
        if shard is False:
            return False
        if shard is not None:
            return True
        threshold = ShardConfig.from_env().threshold_elems
        return int(shape[0]) * int(shape[1]) > threshold

    def run(self, image, **kwargs) -> ShardRun:
        return sharded_sat(image, **kwargs)
