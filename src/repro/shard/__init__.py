"""repro.shard — sharded gigapixel SAT with single-pass tile carries.

Splits images too large for one launch into a tile grid, runs per-tile
SATs across a set of simulated devices and streams, and propagates
inter-tile row/column carries with a LightScan-style decoupled-lookback
descriptor array — one carry fix-up per tile, never a second full sweep.

* :mod:`.descriptor` — the ``X``/``A``/``P`` tile-status protocol;
* :mod:`.executor` — :func:`sharded_sat` / :func:`sharded_sat_series`,
  the :class:`ShardConfig` knobs and the modeled device/stream timeline;
* :mod:`.query` — :class:`TiledSat`, constant-time rectangle queries on
  the sharded table with int64-widened corner arithmetic.

``sat()`` shards transparently above :data:`DEFAULT_THRESHOLD_ELEMS`
(override with ``REPRO_SHARD_THRESHOLD`` or ``sat(shard=...)``) — the
importable hook lives in :mod:`repro.exec.registry`.

See ``docs/sharding.md``.
"""

from ..exec.registry import register_sharder
from .descriptor import A, DescriptorChain, LookbackStats, P, X
from .executor import (
    DEFAULT_THRESHOLD_ELEMS,
    ShardConfig,
    ShardRun,
    ShardSeriesRun,
    TiledSharder,
    sharded_sat,
    sharded_sat_series,
)
from .query import TiledSat

__all__ = [
    "X",
    "A",
    "P",
    "DescriptorChain",
    "LookbackStats",
    "DEFAULT_THRESHOLD_ELEMS",
    "ShardConfig",
    "ShardRun",
    "ShardSeriesRun",
    "TiledSat",
    "TiledSharder",
    "sharded_sat",
    "sharded_sat_series",
]

#: The default sharder ``sat()`` consults through the exec registry.
register_sharder("tiled", TiledSharder())
