"""Service-level objectives evaluated as multi-window burn rates.

An :class:`SloObjective` defines a *good-event fraction* the serving
stack must sustain — e.g. "95% of requests complete under 100 ms",
"99.9% of requests succeed", "50% of requests coalesce".  Each objective
reads a cumulative ``(good, total)`` pair straight from the process
:class:`~repro.obs.metrics.MetricsRegistry` (the latency objective uses
the bucketed histogram's ``count_below``), so tracking adds **no new
instrumentation** to the hot path — the tracker is a pure reader.

Burn rate (the SRE framing): with ``budget = 1 - target`` as the allowed
bad fraction, the burn rate over a window is::

    burn = (bad events / total events) / budget

``burn == 1`` consumes the error budget exactly at the sustainable rate;
``burn == 2`` exhausts it twice as fast.  One window cannot distinguish
a blip from a trend, so the tracker evaluates **two**:

* a *short* window (fast detection, noisy), and
* a *long* window (slow, confident);

and classifies each objective::

    breach   short >= breach_factor  AND  long >= breach_factor
    warning  short >= warn_factor    (long still fine)
    ok       otherwise (or no traffic in the window)

The clock is injectable, so tests drive ok → warning → breach
transitions deterministically with fault injection and a fake clock.
The tracker samples lazily on :meth:`evaluate` (every ``stats()`` call
advances it) and keeps a bounded deque of count snapshots.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, get_metrics

__all__ = [
    "SloObjective",
    "SloTracker",
    "default_objectives",
]

#: Objective kinds and the metrics their (good, total) counts come from.
KINDS = ("latency", "error_rate", "coalesce")


@dataclass(frozen=True)
class SloObjective:
    """One good-event-fraction objective over the serve metrics.

    kind:
        ``"latency"`` — good = responses with
        ``serve.request_latency_us <= threshold_us`` (bucket-resolution
        count from the streaming histogram);
        ``"error_rate"`` — good = successful responses, total = responses
        plus structured errors;
        ``"coalesce"`` — good = responses that shared their launch.
    target:
        Required good fraction in ``(0, 1)``; the error budget is
        ``1 - target``.
    """

    name: str
    kind: str
    target: float
    threshold_us: float = 0.0
    description: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; one of {KINDS}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == "latency" and self.threshold_us <= 0:
            raise ValueError("latency objectives need threshold_us > 0")

    @property
    def budget(self) -> float:
        """Allowed bad-event fraction."""
        return 1.0 - self.target

    def counts(self, registry: MetricsRegistry) -> Tuple[float, float]:
        """Cumulative ``(good, total)`` for this objective, read-only."""
        if self.kind == "latency":
            h = registry.histogram("serve.request_latency_us")
            return float(h.count_below(self.threshold_us)), float(h.count)
        if self.kind == "error_rate":
            ok = registry.counter_total("serve.responses")
            bad = registry.counter_total("serve.errors")
            return float(ok), float(ok + bad)
        # coalesce
        ok = registry.counter_total("serve.coalesced_requests")
        total = registry.counter_total("serve.responses")
        return float(ok), float(total)

    def as_dict(self) -> Dict[str, Any]:
        d = {"name": self.name, "kind": self.kind, "target": self.target,
             "budget": self.budget}
        if self.kind == "latency":
            d["threshold_us"] = self.threshold_us
        if self.description:
            d["description"] = self.description
        return d


def default_objectives(
    latency_threshold_us: float = 100_000.0,
    latency_target: float = 0.95,
    error_target: float = 0.999,
    coalesce_target: float = 0.5,
) -> List[SloObjective]:
    """The stock serving objectives (p95-style latency, availability,
    coalesce ratio), with overridable knobs."""
    return [
        SloObjective(
            name="latency_p95", kind="latency", target=latency_target,
            threshold_us=latency_threshold_us,
            description=(f"{latency_target:.0%} of requests under "
                         f"{latency_threshold_us / 1e3:g} ms"),
        ),
        SloObjective(
            name="availability", kind="error_rate", target=error_target,
            description=f"{error_target:.1%} of requests succeed",
        ),
        SloObjective(
            name="coalesce", kind="coalesce", target=coalesce_target,
            description=(f"{coalesce_target:.0%} of requests share "
                         "their launch"),
        ),
    ]


class SloTracker:
    """Evaluates objectives over short/long burn-rate windows.

    Pure reader over the metrics registry: sampling and evaluation never
    write an instrument, so a tracker cannot perturb the quantities it
    judges.  Thread-safe by construction — evaluation happens under the
    caller (``stats()``/CLI), and the deque is only touched there.
    """

    def __init__(
        self,
        objectives: Optional[Sequence[SloObjective]] = None,
        short_window_s: float = 60.0,
        long_window_s: float = 600.0,
        warn_factor: float = 1.0,
        breach_factor: float = 2.0,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.objectives = (list(objectives) if objectives is not None
                           else default_objectives())
        if short_window_s >= long_window_s:
            raise ValueError("short window must be shorter than the long one")
        self.short_window_s = float(short_window_s)
        self.long_window_s = float(long_window_s)
        self.warn_factor = float(warn_factor)
        self.breach_factor = float(breach_factor)
        self._registry = registry
        self._clock = clock
        #: (t, ((good, total) per objective)) snapshots, oldest first.
        self._samples: Deque[Tuple[float, Tuple[Tuple[float, float], ...]]] \
            = deque()

    @classmethod
    def from_config(cls, config, **kwargs) -> Optional["SloTracker"]:
        """Coerce a service-level ``slo=`` parameter.

        ``None``/``False`` → no tracker; ``True`` → defaults; a mapping →
        knobs for :func:`default_objectives` plus tracker kwargs
        (``short_window_s``...); an :class:`SloTracker` passes through.
        """
        if config is None or config is False:
            return None
        if isinstance(config, cls):
            return config
        if config is True:
            return cls(**kwargs)
        cfg = dict(config)
        obj_keys = {"latency_threshold_us", "latency_target",
                    "error_target", "coalesce_target"}
        obj_kwargs = {k: cfg.pop(k) for k in list(cfg) if k in obj_keys}
        cfg.update(kwargs)
        # An explicit objectives list wins over the default_objectives knobs.
        objectives = cfg.pop("objectives", None)
        if objectives is None:
            objectives = default_objectives(**obj_kwargs)
        elif obj_kwargs:
            raise ValueError(
                "pass either 'objectives' or objective knobs "
                f"({sorted(obj_kwargs)}), not both"
            )
        return cls(objectives=objectives, **cfg)

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_metrics()

    # -- sampling --------------------------------------------------------
    def sample(self, now: Optional[float] = None) -> None:
        """Snapshot cumulative counts; prunes history past the long
        window (one older sample is kept as the window's left edge)."""
        t = self._clock() if now is None else float(now)
        counts = tuple(o.counts(self.registry) for o in self.objectives)
        self._samples.append((t, counts))
        horizon = t - self.long_window_s
        while len(self._samples) >= 2 and self._samples[1][0] <= horizon:
            self._samples.popleft()

    def _window_counts(
        self, idx: int, now: float, window: float,
        current: Tuple[float, float],
    ) -> Tuple[float, float]:
        """(good, total) delta over the trailing ``window`` seconds."""
        edge = now - window
        base = (0.0, 0.0)
        for t, counts in self._samples:
            if t <= edge:
                base = counts[idx]
            else:
                break
        return current[0] - base[0], current[1] - base[1]

    # -- evaluation ------------------------------------------------------
    def _classify(self, burn_short: float, burn_long: float) -> str:
        if (burn_short >= self.breach_factor
                and burn_long >= self.breach_factor):
            return "breach"
        if burn_short >= self.warn_factor:
            return "warning"
        return "ok"

    def evaluate(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Sample, then judge every objective; the ``stats()`` payload.

        Returns ``{"state": worst, "objectives": {name: {...}}}`` where
        each objective reports its cumulative good fraction, both window
        burn rates and its state.  Zero traffic in a window reads as
        burn 0 (you cannot burn budget without events).
        """
        t = self._clock() if now is None else float(now)
        self.sample(t)
        rank = {"ok": 0, "warning": 1, "breach": 2}
        worst = "ok"
        out: Dict[str, Any] = {}
        current = self._samples[-1][1]
        for i, obj in enumerate(self.objectives):
            good, total = current[i]
            burns = {}
            for label, window in (("short", self.short_window_s),
                                  ("long", self.long_window_s)):
                g, n = self._window_counts(i, t, window, current[i])
                bad_frac = ((n - g) / n) if n > 0 else 0.0
                burns[label] = bad_frac / obj.budget
            state = self._classify(burns["short"], burns["long"])
            if rank[state] > rank[worst]:
                worst = state
            entry = obj.as_dict()
            entry.update(
                good=good,
                total=total,
                good_fraction=(good / total) if total else 1.0,
                burn_short=burns["short"],
                burn_long=burns["long"],
                state=state,
            )
            out[obj.name] = entry
        return {
            "state": worst,
            "windows": {"short_s": self.short_window_s,
                        "long_s": self.long_window_s},
            "factors": {"warn": self.warn_factor,
                        "breach": self.breach_factor},
            "objectives": out,
        }
