"""Performance-regression checker against the checked-in BENCH files.

``python -m repro.obs.regress`` re-measures the configurations recorded in
``BENCH_batch.json`` / ``BENCH_simulator.json`` and flags modeled-time
regressions beyond a threshold::

    python -m repro.obs.regress --bench BENCH_batch.json --threshold 10

Modeled metrics (the simulator's deterministic ``KernelTiming`` figures:
modeled per-image time, plan-cache hit rate) are compared strictly; host
**wall-clock** metrics are environment-dependent, so they are reported but
only fail a ``--strict`` run when ``--include-wall`` is given.  The
default exit code is 0 (warn-only, the CI ``trace-smoke`` posture);
``--strict`` exits 1 when any strict metric regresses.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "RegressionFinding",
    "load_bench",
    "latest_entry",
    "compare_metrics",
    "fresh_batch_metrics",
    "fresh_simulator_metrics",
    "fresh_serve_metrics",
    "fresh_shard_metrics",
    "fresh_autotune_metrics",
    "check_bench_file",
    "main",
]

#: Direction per metric: "lower" means lower-is-better.
BATCH_METRICS: Dict[str, str] = {
    "modeled_sequential_per_image_s": "lower",
    "plan_efficiency": "higher",
}
SIMULATOR_METRICS: Dict[str, str] = {
    "fused_s": "lower",
}
SERVE_METRICS: Dict[str, str] = {
    "coalesce_ratio": "higher",
    "p95_ms": "lower",
    "p99_ms": "lower",
}
SHARD_METRICS: Dict[str, str] = {
    "tiles_per_s": "higher",
    "carry_overhead_frac": "lower",
    "overlap_fraction": "higher",
}
AUTOTUNE_METRICS: Dict[str, str] = {
    "match_rate": "higher",
}
#: Metrics measured in host wall time (noisy; excluded from strict checks
#: unless --include-wall).
WALL_METRICS = {"fused_s", "legacy_s", "wall_s", "p95_ms", "p99_ms"}


@dataclass
class RegressionFinding:
    """One baseline-vs-fresh comparison."""

    bench: str
    metric: str
    baseline: float
    current: float
    #: Signed change in percent; positive means the metric moved in the
    #: *bad* direction for its polarity.
    change_pct: float
    regression: bool
    #: Wall-clock metric (environment-dependent, warn-only by default).
    noisy: bool = False

    def describe(self) -> str:
        flag = "REGRESSION" if self.regression else "ok"
        noise = " (wall-clock, noisy)" if self.noisy else ""
        return (
            f"[{flag}] {self.bench}: {self.metric} baseline={self.baseline:.6g} "
            f"current={self.current:.6g} ({self.change_pct:+.1f}%){noise}"
        )


def load_bench(path) -> List[dict]:
    """The entry list of one BENCH_*.json history file."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON list of bench entries")
    return data


def latest_entry(entries: Sequence[dict], require: Sequence[str] = ()) -> Optional[dict]:
    """The newest entry carrying every key in ``require`` (file order)."""
    for entry in reversed(entries):
        if all(k in entry for k in require):
            return entry
    return None


def compare_metrics(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    metrics: Mapping[str, str],
    threshold_pct: float,
    bench: str = "",
) -> List[RegressionFinding]:
    """Compare shared metrics; a change past ``threshold_pct`` in the bad
    direction is a regression.  Metrics missing on either side are skipped."""
    findings: List[RegressionFinding] = []
    for name, direction in metrics.items():
        b, c = baseline.get(name), current.get(name)
        if b is None or c is None:
            continue
        b, c = float(b), float(c)
        if b == 0.0:
            continue
        raw_pct = (c - b) / abs(b) * 100.0
        bad_pct = raw_pct if direction == "lower" else -raw_pct
        findings.append(RegressionFinding(
            bench=bench,
            metric=name,
            baseline=b,
            current=c,
            change_pct=bad_pct,
            regression=bad_pct > threshold_pct,
            noisy=name in WALL_METRICS,
        ))
    return findings


# -- fresh measurements ----------------------------------------------------

def fresh_batch_metrics(entry: Mapping[str, Any], n_images: Optional[int] = None) -> Dict[str, float]:
    """Re-measure the engine configuration of one BENCH_batch entry.

    The modeled per-image sequential time depends only on the recorded
    size/pair/algorithm/device, never on the batch depth, so a small fresh
    batch (default ≤8 images) reproduces it exactly.
    """
    import numpy as np

    from ..dtypes import parse_pair
    from ..engine import Engine
    from ..exec.config import ExecutionConfig, execution

    size = entry.get("size", [512, 512])
    h, w = int(size[0]), int(size[1])
    pair = entry.get("pair", "8u32s")
    n = int(n_images if n_images is not None else min(int(entry.get("n_images", 8)), 8))
    tp = parse_pair(pair)
    rng = np.random.default_rng(0)
    if tp.input.is_integer:
        imgs = [rng.integers(0, 256, (h, w)).astype(tp.input.np_dtype)
                for _ in range(n)]
    else:
        imgs = [rng.standard_normal((h, w)).astype(tp.input.np_dtype)
                for _ in range(n)]
    # Pin the default execution mode: BENCH histories are recorded with
    # batching on, and e.g. the sanitized CI profile would otherwise fall
    # back to per-image execution and "regress" every plan metric.
    with execution(ExecutionConfig(fused=True, sanitize=False,
                                   bounds_check=False)):
        run = Engine().run_batch(
            imgs, pair=pair, algorithm=entry.get("algorithm", "brlt_scanrow"),
            device=entry.get("device", "P100"),
        )
    return {
        "modeled_sequential_per_image_s": run.modeled_sequential_s / run.n_images,
        "plan_efficiency": _plan_efficiency(run.plan_hit_rate, run.n_images),
    }


def _plan_efficiency(hit_rate: float, n_images: int) -> float:
    """Hit rate relative to the ideal for the batch depth.

    A uniform single-bucket batch of ``n`` images can hit at most
    ``(n-1)/n`` (the first image of the bucket always misses), so the raw
    hit rate is not comparable across depths — the 8-image regress
    re-measurement would always "regress" against a 64-image baseline.
    Efficiency 1.0 means every avoidable miss was avoided.
    """
    if n_images <= 1:
        return 1.0
    return hit_rate / ((n_images - 1) / n_images)


def baseline_batch_metrics(entry: Mapping[str, Any]) -> Dict[str, float]:
    """The comparable metric set of a recorded BENCH_batch entry."""
    out: Dict[str, float] = {}
    if "modeled_sequential_s" in entry and entry.get("n_images"):
        out["modeled_sequential_per_image_s"] = (
            float(entry["modeled_sequential_s"]) / int(entry["n_images"])
        )
    if "plan_hit_rate" in entry and entry.get("n_images"):
        out["plan_efficiency"] = _plan_efficiency(
            float(entry["plan_hit_rate"]), int(entry["n_images"])
        )
    return out


def fresh_simulator_metrics(entry: Mapping[str, Any]) -> Dict[str, float]:
    """Re-time the simulator wall clock of one BENCH_simulator entry."""
    from ..sat.api import sat
    from ..workloads import random_matrix
    from ..dtypes import parse_pair
    from ..exec.config import ExecutionConfig, execution

    size = entry.get("size", [512, 512])
    pair = entry.get("pair", "32f32f")
    tp = parse_pair(pair)
    img = random_matrix((int(size[0]), int(size[1])), tp.input, seed=0)
    best = float("inf")
    # The metric is named fused_s: pin the fused path whatever the ambient
    # profile (legacy/sanitized CI legs would otherwise time the wrong mode).
    with execution(ExecutionConfig(fused=True, sanitize=False,
                                   bounds_check=False)):
        for _ in range(3):
            t0 = time.perf_counter()
            sat(img, pair=pair, algorithm="brlt_scanrow",
                device=entry.get("device", "P100"))
            best = min(best, time.perf_counter() - t0)
    return {"fused_s": best}


def fresh_serve_metrics(entry: Mapping[str, Any]) -> Dict[str, float]:
    """Re-measure the serving figures of one BENCH_serve entry.

    A small same-shape closed loop reproduces the headline
    ``coalesce_ratio`` (deterministic given concurrency > workers) and a
    fresh ``p95_ms`` (wall clock, so warn-only by default).  The modes are
    pinned like the other fresh measurements: a sanitized ambient profile
    would otherwise serialise workers and distort both figures.
    """
    import numpy as np

    from ..exec.config import ExecutionConfig, execution
    from ..serve import SatService, run_closed_loop

    size = entry.get("size", [128, 128])
    rng = np.random.default_rng(0)
    img = rng.integers(0, 256, (int(size[0]), int(size[1]))).astype(np.uint8)
    workers = int(entry.get("workers", 4))
    delay_s = float(entry.get("max_delay_ms", 5.0)) / 1e3
    with execution(ExecutionConfig(fused=True, sanitize=False,
                                   bounds_check=False)):
        with SatService(workers=workers, max_delay_s=delay_s) as svc:
            svc.sat(img)    # warm the bucket's plan
            rep = run_closed_loop(svc, [img], clients=8,
                                  requests_per_client=8)
    return {
        "coalesce_ratio": rep.coalesce_ratio,
        "p95_ms": rep.latency_ms.get("p95", 0.0),
        "p99_ms": rep.latency_ms.get("p99", 0.0),
    }


def fresh_shard_metrics(entry: Mapping[str, Any]) -> Dict[str, float]:
    """Re-run the regress geometry of one BENCH_shard entry.

    The recorded top-level figures are measured at a small fixed geometry
    (2048^2 by default) precisely so this re-measurement is cheap; all
    three metrics derive from the simulator's deterministic cost model,
    so they compare strictly.
    """
    import numpy as np

    from ..exec.config import ExecutionConfig, execution
    from ..shard import sharded_sat

    size = entry.get("size", [2048, 2048])
    tile = entry.get("tile", [512, 512])
    rng = np.random.default_rng(0)
    img = rng.integers(0, 255, size=(int(size[0]), int(size[1])))
    img = img.astype(np.uint8)
    with execution(ExecutionConfig(fused=True, sanitize=False,
                                   bounds_check=False)):
        run = sharded_sat(
            img, pair=entry.get("pair", "8u32s"),
            algorithm=entry.get("algorithm", "brlt_scanrow"),
            shard={"tile_shape": (int(tile[0]), int(tile[1])),
                   "devices": entry.get("devices", "2xP100"),
                   "streams_per_device": 2},
        )
    rep = run.report
    return {name: float(rep[name]) for name in SHARD_METRICS}


def fresh_autotune_metrics(entry: Mapping[str, Any]) -> Dict[str, float]:
    """Re-run the regress grid of one BENCH_autotune entry.

    Replays the planner-vs-measured who-wins comparison over the small
    grid recorded at the entry's top level (devices/pairs/sizes).  Both
    the planner's decisions and the full-simulation measurements are
    deterministic, so ``match_rate`` compares strictly.
    """
    from ..exec.config import ExecutionConfig, execution
    from ..harness.runner import Runner
    from ..plan.planner import CANDIDATES, Planner

    devices = entry.get("devices", ["P100"])
    pairs = entry.get("pairs", ["8u32s"])
    sizes = [int(s) for s in entry.get("sizes", [256, 512])]
    equivalence = float(entry.get("equivalence", 1.02))
    calibration = entry.get("calibration")
    planner = Planner(calibration=calibration)
    runner = Runner(calibration=max(sizes), validate=False)
    matches, cells = 0, 0
    with execution(ExecutionConfig(fused=True, sanitize=False,
                                   bounds_check=False)):
        for device in devices:
            for pair in pairs:
                for size in sizes:
                    decision = planner.decide((size, size), pair, device)
                    measured = {}
                    for cand in CANDIDATES:
                        try:
                            pt = runner.measure(cand.algorithm, pair, device,
                                                size, **cand.opts_dict())
                        except ValueError:
                            continue
                        measured[cand.label] = pt.time_us
                    best = min(measured.values())
                    cells += 1
                    matches += measured[decision.label] <= equivalence * best
    return {"match_rate": matches / max(1, cells)}


def check_bench_file(
    path, threshold_pct: float = 10.0, n_images: Optional[int] = None
) -> List[RegressionFinding]:
    """Re-measure and compare against the newest comparable entry of one
    BENCH file; returns findings (empty when the file has no usable entry)."""
    path = Path(path)
    entries = load_bench(path)
    if "serve" in path.name.lower():
        entry = latest_entry(entries, require=("coalesce_ratio",))
        if entry is None:
            return []
        fresh = fresh_serve_metrics(entry)
        return compare_metrics(entry, fresh, SERVE_METRICS, threshold_pct,
                               bench=path.name)
    if "shard" in path.name.lower():
        entry = latest_entry(entries, require=("tiles_per_s",))
        if entry is None:
            return []
        fresh = fresh_shard_metrics(entry)
        return compare_metrics(entry, fresh, SHARD_METRICS, threshold_pct,
                               bench=path.name)
    if "autotune" in path.name.lower():
        entry = latest_entry(entries, require=("match_rate",))
        if entry is None:
            return []
        fresh = fresh_autotune_metrics(entry)
        return compare_metrics(entry, fresh, AUTOTUNE_METRICS, threshold_pct,
                               bench=path.name)
    if "batch" in path.name.lower():
        entry = latest_entry(entries, require=("modeled_sequential_s", "n_images"))
        if entry is None:
            return []
        fresh = fresh_batch_metrics(entry, n_images=n_images)
        return compare_metrics(
            baseline_batch_metrics(entry), fresh, BATCH_METRICS,
            threshold_pct, bench=path.name,
        )
    entry = latest_entry(entries, require=("fused_s",))
    if entry is None:
        return []
    fresh = fresh_simulator_metrics(entry)
    return compare_metrics(entry, fresh, SIMULATOR_METRICS, threshold_pct,
                           bench=path.name)


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.regress", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--bench", action="append", default=None,
                    help="BENCH_*.json file to check (repeatable; default: "
                         "BENCH_batch.json and BENCH_simulator.json in cwd)")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--n-images", type=int, default=None,
                    help="fresh batch depth (default: min(entry, 8))")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on any non-noisy regression")
    ap.add_argument("--include-wall", action="store_true",
                    help="let wall-clock regressions fail a --strict run")
    args = ap.parse_args(argv)

    benches = args.bench or [
        p for p in ("BENCH_batch.json", "BENCH_simulator.json",
                    "BENCH_serve.json", "BENCH_shard.json",
                    "BENCH_autotune.json")
        if Path(p).exists()
    ]
    if not benches:
        print("no BENCH files found; nothing to check", file=sys.stderr)
        return 0

    failures = 0
    for bench in benches:
        try:
            findings = check_bench_file(
                bench, threshold_pct=args.threshold, n_images=args.n_images
            )
        except (OSError, ValueError) as exc:
            print(f"{bench}: skipped ({exc})", file=sys.stderr)
            continue
        if not findings:
            print(f"{bench}: no comparable entry")
            continue
        for f in findings:
            print(f.describe())
            if f.regression and (args.include_wall or not f.noisy):
                failures += 1
    if failures:
        print(f"{failures} regression(s) beyond {args.threshold:.0f}%")
        return 1 if args.strict else 0
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
