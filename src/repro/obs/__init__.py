"""repro.obs — unified tracing, metrics, SLOs and profiling.

One instrumentation layer over the whole stack (simulator launches, kernel
phases, engine batches and plan-cache traffic, harness calibrations, the
serving layer):

* :mod:`.trace` — low-overhead structured spans/events with
  ``ExecutionConfig``-style resolution (call-site ``trace=`` keyword >
  :func:`tracing` context > ``REPRO_TRACE`` env).  Disabled tracing is a
  guarded no-op and is bit-identical in counters, timings, outputs and
  sanitizer reports.  Span/trace ids are process-unique, and the
  open-span stack is per-thread so one tracer serves concurrent clients.
* :mod:`.context` — :class:`~repro.obs.context.TraceContext` carries span
  lineage across the serve thread boundary, and
  :class:`~repro.obs.context.RequestTimeline` decomposes each response's
  wall latency into stages that sum exactly.
* :mod:`.metrics` — an in-process :class:`~repro.obs.metrics.MetricsRegistry`
  (counters/gauges/histograms) aggregating across ``sat()``/``sat_batch()``
  calls; histograms keep log-spaced buckets for live p50/p95/p99.
* :mod:`.quantiles` — the shared percentile/bucket math behind the
  histograms, the load generator and the Prometheus exposition.
* :mod:`.slo` — configurable objectives (latency, error rate, coalesce
  ratio) evaluated as multi-window burn rates.
* :mod:`.exporters` — Chrome/Perfetto ``trace.json`` on the *modeled*
  timeline (plus per-thread host tracks and coalesce flow arrows), a
  JSONL event log, the per-pass Fig.-8 breakdown rows, and Prometheus
  text exposition of the metrics registry.
* :mod:`.regress` — compares fresh profiles against the checked-in
  ``BENCH_*.json`` histories (``python -m repro.obs.regress``).

See ``docs/observability.md``.
"""

from .context import (
    RequestTimeline,
    TraceContext,
    recording_timeline,
    timeline_add,
    timeline_count,
)
from .exporters import (
    pass_breakdown,
    span_to_dict,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
    validate_chrome_trace,
    validate_prometheus_text,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import MetricsRegistry, get_metrics, reset_metrics
from .quantiles import percentiles
from .slo import SloObjective, SloTracker, default_objectives
from .trace import (
    TRACE_ENV,
    Span,
    Tracer,
    current_tracer,
    env_tracer,
    next_trace_id,
    resolve_tracer,
    tracing,
)

__all__ = [
    "TRACE_ENV",
    "Span",
    "Tracer",
    "current_tracer",
    "env_tracer",
    "next_trace_id",
    "resolve_tracer",
    "tracing",
    "TraceContext",
    "RequestTimeline",
    "recording_timeline",
    "timeline_add",
    "timeline_count",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "percentiles",
    "SloObjective",
    "SloTracker",
    "default_objectives",
    "pass_breakdown",
    "span_to_dict",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
    "validate_chrome_trace",
    "validate_prometheus_text",
    "write_chrome_trace",
    "write_jsonl",
]
