"""repro.obs — unified tracing, metrics and profiling.

One instrumentation layer over the whole stack (simulator launches, kernel
phases, engine batches and plan-cache traffic, harness calibrations):

* :mod:`.trace` — low-overhead structured spans/events with
  ``ExecutionConfig``-style resolution (call-site ``trace=`` keyword >
  :func:`tracing` context > ``REPRO_TRACE`` env).  Disabled tracing is a
  guarded no-op and is bit-identical in counters, timings, outputs and
  sanitizer reports.
* :mod:`.metrics` — an in-process :class:`~repro.obs.metrics.MetricsRegistry`
  (counters/gauges/histograms) aggregating across ``sat()``/``sat_batch()``
  calls.
* :mod:`.exporters` — Chrome/Perfetto ``trace.json`` on the *modeled*
  timeline, a JSONL event log, and the per-pass Fig.-8 breakdown rows.
* :mod:`.regress` — compares fresh profiles against the checked-in
  ``BENCH_*.json`` histories (``python -m repro.obs.regress``).

See ``docs/observability.md``.
"""

from .exporters import (
    pass_breakdown,
    span_to_dict,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import MetricsRegistry, get_metrics, reset_metrics
from .trace import (
    TRACE_ENV,
    Span,
    Tracer,
    current_tracer,
    env_tracer,
    resolve_tracer,
    tracing,
)

__all__ = [
    "TRACE_ENV",
    "Span",
    "Tracer",
    "current_tracer",
    "env_tracer",
    "resolve_tracer",
    "tracing",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "pass_breakdown",
    "span_to_dict",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
