"""Request-scoped trace context and latency timelines for serving.

PR 5's tracer stops at the thread boundary: a traced
:class:`~repro.serve.service.SatService` request loses its span lineage
the moment the :class:`~repro.serve.batcher.DynamicBatcher` hands it to a
:class:`~repro.serve.pool.WorkerPool` thread, because span nesting lives
in a per-thread stack.  This module closes the gap with two pieces:

:class:`TraceContext`
    An immutable capture of *where in the span tree a request was born*
    (trace id, parent span id, baggage).  It is taken on the submitting
    thread, travels inside the request object, and is re-activated on
    the worker via :meth:`~repro.obs.trace.Tracer.activate`, so
    launch/replay/engine/plan/shard spans nest under the originating
    request even though they execute on a different thread.  Requests
    that coalesce into one batch each keep their own trace; the batch
    span records them as **span links**.

:class:`RequestTimeline`
    The Fig.-8 discipline applied to serving: every response carries a
    decomposition of its end-to-end wall latency into consecutive,
    non-overlapping stages measured from one monotonic clock —

    ``submit → queue_wait → dispatch_wait → execute → finish``

    which therefore **sum exactly** to ``latency_us``.  Orthogonal
    attributions that overlap the stages (modeled kernel µs, plan.decide
    µs, plan/compile cache hits, shard carry overhead) ride along as
    ``annotations`` — they explain *execute*, they do not re-partition
    it.

The annotations are gathered through a context-local accumulator
(:func:`recording_timeline` / :func:`timeline_add`): the engine, planner
and shard executor call the guarded helpers unconditionally, and when no
accumulator is installed the helpers reduce to a single context-var read
— the same disabled-is-a-no-op invariant the tracer keeps.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from .trace import Tracer, next_trace_id

__all__ = [
    "TraceContext",
    "RequestTimeline",
    "recording_timeline",
    "timeline_add",
    "timeline_count",
    "timeline_active",
]


def _bag(baggage: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in baggage.items()))


@dataclass(frozen=True)
class TraceContext:
    """Immutable span lineage captured on one thread for use on another.

    ``span_id == 0`` means "root of the trace": spans opened under this
    context become trace roots rather than children.
    """

    trace_id: int
    span_id: int = 0
    #: Sorted ``(key, value)`` string pairs — hashable, JSON-friendly.
    baggage: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def capture(cls, tracer: Optional[Tracer], **baggage) -> Optional["TraceContext"]:
        """Capture the calling thread's current lineage from ``tracer``.

        Inside an open span, the new context continues that span's trace
        as a child.  Outside any span — the common serving case, a bare
        client thread — each capture allocates a **fresh trace id**, so
        concurrent tenants get distinct traces.  ``tracer=None`` returns
        ``None`` (tracing disabled: no ids are allocated).
        """
        if tracer is None:
            return None
        cur = tracer.current_span
        if cur is not None:
            return cls(trace_id=cur.trace_id, span_id=cur.id,
                       baggage=_bag(baggage))
        return cls(trace_id=next_trace_id(), span_id=0, baggage=_bag(baggage))

    @classmethod
    def root(cls, **baggage) -> "TraceContext":
        """A fresh root context (new process-unique trace id)."""
        return cls(trace_id=next_trace_id(), span_id=0, baggage=_bag(baggage))

    def child(self, span_id: int) -> "TraceContext":
        """The same trace, re-rooted under ``span_id`` (baggage kept)."""
        return TraceContext(trace_id=self.trace_id, span_id=int(span_id),
                            baggage=self.baggage)

    @property
    def baggage_dict(self) -> Dict[str, str]:
        return dict(self.baggage)

    def as_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "baggage": self.baggage_dict}


# Ordered latency components; consecutive deltas of one clock, so they
# sum to latency_us exactly (see from_marks).
TIMELINE_COMPONENTS: Tuple[str, ...] = (
    "submit_us",       # submit() entry -> queued (config resolution,
                       #   plan.decide for auto, request-span open)
    "queue_wait_us",   # queued -> admitted into a batch (size knee /
                       #   deadline / flush)
    "dispatch_wait_us",  # batch formed -> a worker picks it up
    "execute_us",      # engine run_group window (compile, replay, shard)
    "finish_us",       # table ready -> response built & future resolved
)


@dataclass
class RequestTimeline:
    """Per-request latency decomposition attached to every response.

    The five stage fields are consecutive intervals of one monotonic
    clock and sum **exactly** to ``latency_us``; ``annotations`` carries
    overlapping attributions (modeled kernel µs, plan/compile cache
    traffic, shard carry) that explain the execute stage without
    re-partitioning it.  Annotations are batch-scoped: every request
    coalesced into a batch shares its execute window and therefore its
    annotations.
    """

    submit_us: float = 0.0
    queue_wait_us: float = 0.0
    dispatch_wait_us: float = 0.0
    execute_us: float = 0.0
    finish_us: float = 0.0
    #: End-to-end wall latency (same clock, same endpoints as the sum).
    latency_us: float = 0.0
    batch_size: int = 1
    batch_reason: str = ""
    annotations: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_marks(cls, *, submitted: float, queued: float, admitted: float,
                   started: float, executed: float, completed: float,
                   batch_size: int = 1, batch_reason: str = "",
                   annotations: Optional[Dict[str, float]] = None,
                   ) -> "RequestTimeline":
        """Build from six ``perf_counter()`` marks (seconds) along one
        request's path; component sums are exact by construction."""
        return cls(
            submit_us=(queued - submitted) * 1e6,
            queue_wait_us=(admitted - queued) * 1e6,
            dispatch_wait_us=(started - admitted) * 1e6,
            execute_us=(executed - started) * 1e6,
            finish_us=(completed - executed) * 1e6,
            latency_us=(completed - submitted) * 1e6,
            batch_size=batch_size,
            batch_reason=batch_reason,
            annotations=dict(annotations or {}),
        )

    def components(self) -> Dict[str, float]:
        """The five stage durations, in path order."""
        return {name: getattr(self, name) for name in TIMELINE_COMPONENTS}

    def components_sum_us(self) -> float:
        return sum(self.components().values())

    def as_dict(self) -> Dict[str, Any]:
        d = self.components()
        d["latency_us"] = self.latency_us
        d["batch_size"] = self.batch_size
        d["batch_reason"] = self.batch_reason
        d["annotations"] = dict(self.annotations)
        return d


# -- timeline annotation accumulator ---------------------------------------

#: The installing thread's annotation accumulator; ``None`` = disabled.
_timeline: ContextVar[Optional[Dict[str, float]]] = ContextVar(
    "repro_obs_timeline", default=None
)


@contextmanager
def recording_timeline(acc: Optional[Dict[str, float]] = None,
                       ) -> Iterator[Dict[str, float]]:
    """Install an annotation accumulator for the enclosed work.

    The worker wraps each batch execution in this; the engine, planner
    and shard executor then feed it through :func:`timeline_add` /
    :func:`timeline_count` without knowing whether anyone is listening.
    """
    if acc is None:
        acc = {}
    token = _timeline.set(acc)
    try:
        yield acc
    finally:
        _timeline.reset(token)


def timeline_active() -> bool:
    """Whether a timeline accumulator is installed (one context-var read)."""
    return _timeline.get() is not None


def timeline_add(name: str, value: float) -> None:
    """Accumulate ``value`` under ``name`` — a guarded no-op when no
    timeline is recording (the hot-path cost is one context-var read)."""
    acc = _timeline.get()
    if acc is not None:
        acc[name] = acc.get(name, 0.0) + float(value)


def timeline_count(name: str, n: int = 1) -> None:
    """Count an occurrence (plan hit, compile miss...) into the timeline."""
    acc = _timeline.get()
    if acc is not None:
        acc[name] = acc.get(name, 0.0) + n
