"""Structured tracing: spans and events over the whole execution stack.

The tracer is the observability counterpart of
:class:`~repro.exec.config.ExecutionConfig` — one resolution path, highest
precedence first:

1. **explicit keyword** at a call site (``sat(img, trace=tracer)``);
2. **context manager** (``with tracing() as tr:``), innermost first — a
   ``tracing(enabled=False)`` context explicitly shadows everything below;
3. **environment**: ``REPRO_TRACE`` (same falsy spellings as every other
   ``REPRO_*`` flag) routes spans into a process-global tracer reachable
   via :func:`env_tracer`.

With nothing configured, :func:`current_tracer` returns ``None`` and every
instrumentation site reduces to one context-var read plus one environment
lookup — the guarded no-op path.  Tracing is deliberately **not** an
:class:`~repro.exec.config.ExecutionConfig` field: it must never reach
plan-cache keys, kernel arguments or counters, so enabling it cannot
perturb outputs, timings or sanitizer reports.

Span model
----------
A :class:`Span` is one timed region with a ``category`` describing which
layer emitted it:

=================  ====================================================
category           emitted by
=================  ====================================================
``sat``            one backend ``run()`` (all passes of one algorithm)
``launch``         :func:`~repro.gpusim.launch.launch_kernel` (cold)
``replay``         :func:`~repro.gpusim.launch.replay_kernel`
``kernel.phase``   a stage inside a kernel body (load/brlt/scan/...)
``pass.host``      one host-backend pass
``batch``          one :meth:`~repro.engine.batch.Engine.run_batch`
``chunk``          one stacked replay chunk of the engine
``calibrate``      one :class:`~repro.harness.runner.Runner` calibration
=================  ====================================================

Launch/replay spans carry the resolved execution modes, the grid/block
geometry and a snapshot of the :class:`~repro.gpusim.counters.CostCounters`
plus the modeled :class:`~repro.gpusim.cost.model.KernelTiming` components
(microseconds).  Kernel-phase spans carry the dependency-chain clock at
entry and exit (``chain0``/``chain1``), which is how the Chrome exporter
places them on the modeled timeline.  All attribute collection happens by
*reading* simulator state, never writing it.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

from ..exec.config import env_flag

__all__ = [
    "TRACE_ENV",
    "Span",
    "Tracer",
    "next_trace_id",
    "tracing",
    "current_tracer",
    "resolve_tracer",
    "env_tracer",
    "kernel_phase",
    "annotate_launch",
]

#: Environment flag enabling the process-global tracer (lowest precedence).
TRACE_ENV = "REPRO_TRACE"

# Process-wide id counters: span and trace ids stay unique across every
# Tracer instance, so merged multi-thread / multi-tracer exports never
# collide.  ``itertools.count`` increments are atomic under the GIL.
_span_ids = itertools.count(1)
_trace_ids = itertools.count(1)


def next_trace_id() -> int:
    """Allocate a fresh process-unique trace id."""
    return next(_trace_ids)


@dataclass
class Span:
    """One timed region of the execution stack."""

    id: int
    parent_id: Optional[int]
    name: str
    category: str
    #: Host wall clock at open/close (``time.perf_counter_ns``).
    t0_ns: int
    t1_ns: int = 0
    #: Structured attributes (config, geometry, counters, timing...).
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: The request/trace this span belongs to (cross-thread correlation).
    trace_id: int = 0
    #: Span links: causal edges that are not parent/child — e.g. a batch
    #: span linking every request that coalesced into it.  Each link is
    #: ``{"trace_id": int, "span_id": int}``.
    links: List[Dict[str, int]] = field(default_factory=list)
    #: Name of the thread that opened the span (exporters group host
    #: tracks by thread).
    thread: str = ""

    @property
    def wall_us(self) -> float:
        """Host wall-clock duration, microseconds."""
        return (self.t1_ns - self.t0_ns) / 1e3

    @property
    def modeled_us(self) -> Optional[float]:
        """Modeled GPU duration, if this span represents a kernel."""
        return self.attrs.get("modeled_us")


class Tracer:
    """Collects :class:`Span` and instant events for one traced region.

    Spans are appended in *open* order (pre-order of the span tree per
    thread), so a child always follows its parent; ``parent_id``
    reconstructs nesting.  The tracer is cheap but not free — it exists
    only while tracing is enabled; disabled call sites never construct
    spans at all.

    Thread safety: the serving layer traces from client and worker
    threads concurrently into one tracer.  The open-span stack is
    **thread-local** (nesting is a per-thread notion), appends to the
    shared ``spans``/``events`` lists take a lock, and span ids come from
    a process-wide counter.  A worker re-parents its spans under the
    originating request with :meth:`activate`.
    """

    def __init__(self):
        self.spans: List[Span] = []
        #: Instant events: plan-cache hits/misses, tape mismatches...
        self.events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Default trace id for spans opened with no enclosing span and
        #: no :meth:`activate` context (single-request CLI traces).
        self.trace_id = next(_trace_ids)

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def _stack(self) -> List[Span]:
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open span *on the calling thread*."""
        st = self._stack
        return st[-1] if st else None

    def _lineage(self) -> "tuple[int, Optional[int]]":
        """(trace_id, parent span id) a new span on this thread inherits."""
        st = self._stack
        if st:
            return st[-1].trace_id, st[-1].id
        amb = getattr(self._local, "ambient", None)
        if amb is not None:
            return amb
        return self.trace_id, None

    @contextmanager
    def activate(self, ctx) -> Iterator[None]:
        """Adopt a captured trace context as this thread's span lineage.

        ``ctx`` is anything with ``trace_id``/``span_id`` attributes
        (:class:`~repro.obs.context.TraceContext`).  While active, spans
        opened on this thread with an empty stack parent under
        ``ctx.span_id`` and carry ``ctx.trace_id`` — this is how a worker
        thread nests engine/launch/replay spans under the submitting
        request's span.  ``ctx=None`` is a no-op scope.
        """
        if ctx is None:
            yield
            return
        prev = getattr(self._local, "ambient", None)
        self._local.ambient = (
            int(ctx.trace_id),
            int(ctx.span_id) if ctx.span_id else None,
        )
        try:
            yield
        finally:
            self._local.ambient = prev

    @contextmanager
    def span(self, name: str, category: str = "span", **attrs) -> Iterator[Span]:
        """Open a span around a ``with`` block; yields it for annotation."""
        trace_id, parent_id = self._lineage()
        sp = Span(
            id=next(_span_ids),
            parent_id=parent_id,
            name=name,
            category=category,
            t0_ns=time.perf_counter_ns(),
            attrs=dict(attrs),
            trace_id=trace_id,
            thread=threading.current_thread().name,
        )
        with self._lock:
            self.spans.append(sp)
        self._stack.append(sp)
        try:
            yield sp
        finally:
            self._stack.pop()
            sp.t1_ns = time.perf_counter_ns()

    def start_span(self, name: str, category: str = "span", ctx=None,
                   links=None, **attrs) -> Span:
        """Open a span *without* entering the per-thread stack.

        For regions whose lifetime crosses threads — a serve request span
        is opened on the submitting thread and closed by whichever worker
        completes it — the ``with``-block discipline of :meth:`span`
        cannot apply.  ``ctx`` overrides lineage (else the calling
        thread's resolution is used); ``links`` is an iterable of
        trace-context-like objects recorded as span links.  Close with
        :meth:`end_span`.
        """
        if ctx is not None:
            trace_id = int(ctx.trace_id)
            parent_id = int(ctx.span_id) if ctx.span_id else None
        else:
            trace_id, parent_id = self._lineage()
        sp = Span(
            id=next(_span_ids),
            parent_id=parent_id,
            name=name,
            category=category,
            t0_ns=time.perf_counter_ns(),
            attrs=dict(attrs),
            trace_id=trace_id,
            thread=threading.current_thread().name,
        )
        if links:
            sp.links = [
                {"trace_id": int(l.trace_id), "span_id": int(l.span_id)}
                for l in links
            ]
        with self._lock:
            self.spans.append(sp)
        return sp

    def end_span(self, sp: Span) -> Span:
        """Close a span opened with :meth:`start_span`."""
        sp.t1_ns = time.perf_counter_ns()
        return sp

    def event(self, name: str, category: str = "event", **attrs) -> Dict[str, Any]:
        """Record an instant event attached to the current span (if any)."""
        cur = self.current_span
        ev = {
            "name": name,
            "category": category,
            "t_ns": time.perf_counter_ns(),
            "span_id": cur.id if cur is not None else None,
            **attrs,
        }
        with self._lock:
            self.events.append(ev)
        return ev

    def clear(self) -> None:
        """Drop collected spans/events (the id counters keep running)."""
        with self._lock:
            self.spans.clear()
            self.events.clear()


# -- resolution ------------------------------------------------------------

_UNSET = object()

#: Innermost :func:`tracing` context; ``None`` means explicitly disabled.
_context: ContextVar[Any] = ContextVar("repro_obs_tracer", default=_UNSET)

_env_tracer: Optional[Tracer] = None


def env_tracer() -> Tracer:
    """The process-global tracer behind ``REPRO_TRACE`` (lazily created)."""
    global _env_tracer
    if _env_tracer is None:
        _env_tracer = Tracer()
    return _env_tracer


def current_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is off (the fast path).

    Resolution: innermost :func:`tracing` context (which may explicitly
    disable), then the ``REPRO_TRACE`` environment flag routing to the
    process-global :func:`env_tracer`.
    """
    ctx = _context.get()
    if ctx is not _UNSET:
        return ctx  # a Tracer, or None when a context disabled tracing
    if env_flag(TRACE_ENV, False):
        return env_tracer()
    return None


def resolve_tracer(trace: Union[None, bool, Tracer] = None) -> Optional[Tracer]:
    """Resolve a call-site ``trace=`` keyword over the ambient resolution.

    ``None`` defers to :func:`current_tracer`; ``False`` disables for this
    call; ``True`` uses the ambient tracer or, absent one, the global
    :func:`env_tracer`; a :class:`Tracer` is used directly.
    """
    if trace is None:
        return current_tracer()
    if trace is False:
        return None
    if trace is True:
        ambient = current_tracer()
        # Explicit identity check: an empty Tracer is len()==0, hence falsy.
        return ambient if ambient is not None else env_tracer()
    return trace


@contextmanager
def tracing(tracer: Optional[Tracer] = None, enabled: bool = True) -> Iterator[Optional[Tracer]]:
    """Scope a tracer over a ``with`` block.

    >>> with tracing() as tr:
    ...     run = sat(img)                       # doctest: +SKIP
    >>> [s.name for s in tr.spans]               # doctest: +SKIP

    ``enabled=False`` pushes an explicit *disable*, shadowing any outer
    context and the ``REPRO_TRACE`` environment flag.
    """
    tr = (tracer if tracer is not None else Tracer()) if enabled else None
    token = _context.set(tr)
    try:
        yield tr
    finally:
        _context.reset(token)


# -- instrumentation helpers ----------------------------------------------

def kernel_phase(tracer: Optional[Tracer], ctx, name: str):
    """Span a stage inside a kernel body, marking chain-clock progress.

    ``chain0``/``chain1`` are the block critical-path clock of the
    executing :class:`~repro.gpusim.block.KernelContext` at entry/exit;
    exporters use their deltas to place the phase inside the launch's
    modeled duration.  Reads counters only — never perturbs them.  With
    ``tracer=None`` this is a no-op context.
    """
    if tracer is None:
        return nullcontext()
    return _kernel_phase(tracer, ctx, name)


@contextmanager
def _kernel_phase(tracer: Tracer, ctx, name: str) -> Iterator[Span]:
    with tracer.span(name, category="kernel.phase",
                     chain0=ctx.counters.chain_clocks) as sp:
        yield sp
    sp.attrs["chain1"] = ctx.counters.chain_clocks


def annotate_launch(span: Span, stats, *, sanitize: Optional[bool] = None,
                    bounds_check: Optional[bool] = None) -> Span:
    """Attach the full launch record to a launch/replay span.

    Everything is copied into plain JSON-friendly values so exporters need
    no knowledge of simulator types.
    """
    timing = stats.timing
    span.attrs.update(
        device=stats.device.name,
        grid=tuple(stats.grid),
        block=tuple(stats.block),
        regs_per_thread=stats.regs_per_thread,
        smem_per_block=stats.smem_per_block,
        counters=stats.counters.as_dict(),
        modeled_us=timing.total * 1e6,
        t_gmem_us=timing.t_gmem * 1e6,
        t_smem_us=timing.t_smem * 1e6,
        t_exec_us=timing.t_exec * 1e6,
        t_latency_us=timing.t_latency * 1e6,
        t_overhead_us=timing.t_overhead * 1e6,
        bound=timing.bound,
        waves=timing.waves,
    )
    if sanitize is not None:
        span.attrs["sanitize"] = bool(sanitize)
    if bounds_check is not None:
        span.attrs["bounds_check"] = bool(bounds_check)
    return span
