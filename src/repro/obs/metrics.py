"""In-process metrics: counters, gauges and histograms.

One process-global :class:`MetricsRegistry` (:func:`get_metrics`)
aggregates across every ``sat()`` / ``sat_batch()`` call — LightScan-style
throughput figures (images/s, effective GB/s) and plan-cache / tape-reuse
rates fall out of the same data instead of being recomputed ad hoc per
benchmark.  Instruments are labelled, e.g.::

    get_metrics().counter("sat.calls", algorithm="brlt_scanrow").inc()

Updates are O(1) dictionary operations with no I/O; the registry never
touches simulator state, so it cannot perturb counters, timings or
sanitizer reports.  ``snapshot()`` returns a plain JSON-friendly dict for
harness reports and exporters.

Thread safety
-------------
The serving layer (:mod:`repro.serve`) updates the registry from worker
and client threads concurrently, so every instrument update is atomic:
each instrument owns a lock (``+=`` on a Python attribute is a
read-modify-write across bytecodes and *does* lose updates under
contention), and the registry guards instrument creation and snapshots
with its own lock so a ``counter(name)`` race always returns the one
shared instrument.  The fast path is one uncontended lock acquire per
update — still no I/O and no simulator state.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

from .quantiles import (
    DEFAULT_PERCENTILES,
    bucket_index,
    bucket_quantile,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
]

MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_key(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """Monotonically increasing count (atomic under threads)."""

    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n


@dataclass
class Gauge:
    """Last-set value (atomic under threads)."""

    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, v: float) -> None:
        with self._lock:
            self.value = float(v)

    def add(self, n: float) -> float:
        """Atomically add ``n`` (may be negative) and return the new value.

        Gauges tracking live quantities (queue depth, in-flight requests)
        are maintained by concurrent increments/decrements; ``set`` alone
        cannot express that without a read-modify-write race.
        """
        with self._lock:
            self.value += n
            return self.value


@dataclass
class Histogram:
    """Streaming distribution: count/sum/min/max plus log-spaced buckets.

    Observations land in fixed geometric buckets
    (:data:`repro.obs.quantiles.GROWTH` ≈ 19% wide), so live p50/p95/p99
    come out of ``quantile()`` with bounded error and O(1) update cost —
    no sample retention.  One lock keeps all fields mutually consistent:
    concurrent observers can never leave ``count`` and ``total``
    describing different sample sets.
    """

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    #: Sparse log-bucket counts: ``{bucket_index(v): n}``.
    buckets: Dict[int, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def observe(self, v: float) -> None:
        v = float(v)
        idx = bucket_index(v)
        with self._lock:
            self.count += 1
            self.total += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucketed estimate of the ``q``-quantile (``0 <= q <= 1``),
        clamped to the observed min/max; 0.0 when empty."""
        with self._lock:
            if not self.count:
                return 0.0
            return bucket_quantile(self.buckets, q, self.min, self.max)

    def percentiles(
        self, ps: Iterable[float] = DEFAULT_PERCENTILES
    ) -> Dict[str, float]:
        """Bucketed percentile estimates keyed ``"p50"``-style."""
        return {f"p{p:g}": self.quantile(p / 100.0) for p in ps}

    def count_below(self, threshold: float) -> int:
        """Samples with value ``<= threshold`` (bucket-resolution upper
        count; exact when ``threshold`` is a bucket boundary).

        The SLO tracker uses this as its "good events" counter for
        latency-threshold objectives.
        """
        t_idx = bucket_index(threshold)
        with self._lock:
            return sum(n for idx, n in self.buckets.items() if idx <= t_idx)

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if not self.count:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                        "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count,
                "p50": bucket_quantile(self.buckets, 0.50, self.min, self.max),
                "p95": bucket_quantile(self.buckets, 0.95, self.min, self.max),
                "p99": bucket_quantile(self.buckets, 0.99, self.min, self.max),
            }


class MetricsRegistry:
    """Keyed store of instruments; one per process by default.

    Instrument creation and whole-registry views take the registry lock;
    updates on an already-created instrument only take that instrument's
    own lock, so hot counters do not serialise against each other.
    """

    def __init__(self):
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}
        self._lock = threading.RLock()

    # -- instrument accessors (create on first use) ---------------------
    def counter(self, name: str, **labels) -> Counter:
        k = _key(name, labels)
        c = self._counters.get(k)
        if c is None:
            with self._lock:
                c = self._counters.get(k)
                if c is None:
                    c = self._counters[k] = Counter()
        return c

    def gauge(self, name: str, **labels) -> Gauge:
        k = _key(name, labels)
        g = self._gauges.get(k)
        if g is None:
            with self._lock:
                g = self._gauges.get(k)
                if g is None:
                    g = self._gauges[k] = Gauge()
        return g

    def histogram(self, name: str, **labels) -> Histogram:
        k = _key(name, labels)
        h = self._histograms.get(k)
        if h is None:
            with self._lock:
                h = self._histograms.get(k)
                if h is None:
                    h = self._histograms[k] = Histogram()
        return h

    # -- queries ---------------------------------------------------------
    def value(self, name: str, **labels) -> Optional[float]:
        """Counter/gauge value for an exact key, ``None`` if never touched."""
        k = _key(name, labels)
        with self._lock:
            if k in self._counters:
                return self._counters[k].value
            if k in self._gauges:
                return self._gauges[k].value
        return None

    def counter_total(self, name: str) -> float:
        """Sum of one counter name across all label sets."""
        with self._lock:
            return sum(
                c.value for (n, _), c in self._counters.items() if n == name
            )

    def instruments(
        self,
    ) -> Tuple[Dict[MetricKey, Counter], Dict[MetricKey, Gauge],
               Dict[MetricKey, Histogram]]:
        """Shallow copies of the instrument maps (counters, gauges,
        histograms) keyed by ``(name, labels)`` — the raw view the
        Prometheus exposition and the SLO tracker read from."""
        with self._lock:
            return (dict(self._counters), dict(self._gauges),
                    dict(self._histograms))

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """JSON-friendly view of every instrument, sorted by formatted key."""
        out: Dict[str, Any] = {}
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        for k, c in counters:
            out[_format_key(k)] = c.value
        for k, g in gauges:
            out[_format_key(k)] = g.value
        for k, h in histograms:
            out[_format_key(k)] = h.summary()
        if prefix:
            out = {k: v for k, v in out.items() if k.startswith(prefix)}
        return dict(sorted(out.items()))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_global = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry shared by the whole stack."""
    return _global


def reset_metrics() -> None:
    """Clear the process-global registry (tests, benchmark isolation)."""
    _global.reset()
