"""Trace exporters: Chrome/Perfetto ``trace.json``, JSONL, breakdown tables.

The Chrome exporter builds a **modeled-time** timeline: launch/replay
spans are laid out back-to-back with their modeled durations (the
simulator's ``KernelTiming`` totals, microseconds), and kernel-phase spans
are placed *inside* their launch proportionally to the dependency-chain
clocks they covered — the per-stage attribution of the paper's Fig. 8,
viewable in ``chrome://tracing`` or https://ui.perfetto.dev.  Host-side
spans (engine batches, chunks, calibrations) go on a separate wall-clock
track so plan-cache and staging behaviour is visible next to the modeled
kernels.

Everything here consumes plain :class:`~repro.obs.trace.Span` objects and
emits JSON-serialisable structures; nothing imports the simulator.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .quantiles import bucket_bounds
from .trace import Span, Tracer

__all__ = [
    "span_to_dict",
    "to_jsonl",
    "write_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "pass_breakdown",
    "to_prometheus",
    "validate_prometheus_text",
]

#: Span categories that live on the modeled-GPU timeline.
MODELED_CATEGORIES = ("launch", "replay")

#: pid of the modeled-GPU track / the host wall-clock track.
MODELED_PID = 0
HOST_PID = 1


def _spans_of(source) -> List[Span]:
    if isinstance(source, Tracer):
        return list(source.spans)
    return list(source)


def span_to_dict(span: Span) -> Dict[str, Any]:
    """JSON-friendly record of one span (the JSONL row shape)."""
    rec = {
        "id": span.id,
        "parent_id": span.parent_id,
        "name": span.name,
        "category": span.category,
        "wall_us": span.wall_us,
        "attrs": _jsonable(span.attrs),
        "trace_id": span.trace_id,
    }
    if span.links:
        rec["links"] = _jsonable(span.links)
    if span.thread:
        rec["thread"] = span.thread
    return rec


def _jsonable(value):
    """Coerce attrs to JSON-clean types (tuples to lists, sets sorted)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def to_jsonl(source) -> List[str]:
    """One JSON line per span (and per event, tagged ``"event": true``)."""
    lines = [json.dumps(span_to_dict(s), sort_keys=True) for s in _spans_of(source)]
    if isinstance(source, Tracer):
        for ev in source.events:
            rec = dict(_jsonable({k: v for k, v in ev.items() if k != "t_ns"}))
            rec["event"] = True
            lines.append(json.dumps(rec, sort_keys=True))
    return lines


def write_jsonl(path, source) -> int:
    """Write the JSONL event log; returns the number of lines."""
    lines = to_jsonl(source)
    with open(path, "w") as f:
        for line in lines:
            f.write(line + "\n")
    return len(lines)


# -- Chrome trace ----------------------------------------------------------

def _meta(pid: int, tid: int, what: str, name: str) -> Dict[str, Any]:
    return {"ph": "M", "pid": pid, "tid": tid, "name": what,
            "args": {"name": name}}


def _complete(name: str, cat: str, pid: int, tid: int, ts: float, dur: float,
              args: Optional[dict] = None) -> Dict[str, Any]:
    ev = {"ph": "X", "name": name, "cat": cat, "pid": pid, "tid": tid,
          "ts": round(ts, 6), "dur": round(dur, 6)}
    if args:
        ev["args"] = _jsonable(args)
    return ev


def to_chrome_trace(source, include_host: bool = True) -> Dict[str, Any]:
    """Build a Chrome/Perfetto trace document from spans.

    The modeled track (pid 0) is fully deterministic — it depends only on
    modeled durations and chain clocks, never on host wall time — so it
    can be snapshot-tested.  ``include_host=False`` omits the wall-clock
    track (pid 1) entirely for that purpose.
    """
    spans = _spans_of(source)
    by_parent: Dict[Optional[int], List[Span]] = {}
    for s in spans:
        by_parent.setdefault(s.parent_id, []).append(s)

    events: List[Dict[str, Any]] = [
        _meta(MODELED_PID, 0, "process_name", "repro modeled GPU"),
        _meta(MODELED_PID, 0, "thread_name", "kernels"),
        _meta(MODELED_PID, 1, "thread_name", "kernel phases"),
    ]

    cursor = 0.0
    for sp in spans:
        if sp.category not in MODELED_CATEGORIES:
            continue
        dur = float(sp.attrs.get("modeled_us") or 0.0)
        events.append(_complete(
            sp.name, sp.category, MODELED_PID, 0, cursor, dur,
            args={k: v for k, v in sp.attrs.items()},
        ))
        phases = [c for c in by_parent.get(sp.id, ())
                  if c.category == "kernel.phase"]
        if phases and dur > 0.0:
            chain_total = float(
                (sp.attrs.get("counters") or {}).get("chain_clocks", 0.0)
            )
            if chain_total > 0.0:
                # Chain clocks are within-launch absolute, so each phase
                # maps linearly into the launch's modeled duration.
                scale = dur / chain_total
                for ph in phases:
                    c0 = float(ph.attrs.get("chain0", 0.0))
                    c1 = float(ph.attrs.get("chain1", c0))
                    events.append(_complete(
                        ph.name, ph.category, MODELED_PID, 1,
                        cursor + c0 * scale, max(c1 - c0, 0.0) * scale,
                        args={"chain0": c0, "chain1": c1},
                    ))
            else:
                # Replays record no chain clocks; spread phases evenly so
                # the stage structure stays visible on the timeline.
                step = dur / len(phases)
                for i, ph in enumerate(phases):
                    events.append(_complete(
                        ph.name, ph.category, MODELED_PID, 1,
                        cursor + i * step, step, args=None,
                    ))
        cursor += dur

    if include_host and spans:
        events.append(_meta(HOST_PID, 0, "process_name", "repro host"))
        # One wall-clock lane per originating thread: a serve run shows
        # each client and worker thread as its own track.  tid 0 stays
        # the merged/unnamed lane so single-thread traces look as before.
        tids: Dict[str, int] = {"": 0}
        for sp in spans:
            if sp.thread not in tids:
                tids[sp.thread] = len(tids)
        for thread, tid in tids.items():
            events.append(_meta(
                HOST_PID, tid, "thread_name",
                thread if thread else "host wall clock",
            ))
        t_base = min(s.t0_ns for s in spans)
        by_id = {s.id: s for s in spans}
        for sp in spans:
            if sp.category == "kernel.phase":
                continue  # already on the modeled track; wall dur is noise
            tid = tids.get(sp.thread, 0)
            events.append(_complete(
                sp.name, sp.category, HOST_PID, tid,
                (sp.t0_ns - t_base) / 1e3, sp.wall_us,
                args={"span_id": sp.id, "trace_id": sp.trace_id},
            ))
            # Span links become flow arrows keyed by the *linked trace
            # id* — each coalesced request's trace flows into the batch
            # span that executed it, so merged multi-request traces
            # never collide even across tracer instances.
            for link in sp.links:
                src = by_id.get(link.get("span_id"))
                if src is None:
                    continue
                flow_id = int(link.get("trace_id", src.trace_id))
                events.append({
                    "ph": "s", "id": flow_id, "name": "coalesce",
                    "cat": "flow", "pid": HOST_PID,
                    "tid": tids.get(src.thread, 0),
                    "ts": round((src.t0_ns - t_base) / 1e3, 6),
                })
                events.append({
                    "ph": "f", "bp": "e", "id": flow_id, "name": "coalesce",
                    "cat": "flow", "pid": HOST_PID, "tid": tid,
                    "ts": round((sp.t0_ns - t_base) / 1e3, 6),
                })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, source, include_host: bool = True) -> Dict[str, Any]:
    """Write ``trace.json``; returns the document written."""
    doc = to_chrome_trace(source, include_host=include_host)
    with open(path, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    return doc


def validate_chrome_trace(doc) -> List[str]:
    """Schema-check a Chrome trace document; returns a list of problems.

    An empty list means the document is a well-formed JSON-object trace
    (``traceEvents`` list; every event a dict with ``ph``/``pid``/``tid``;
    complete events additionally carry numeric ``ts``/``dur``).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"trace must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for k in ("ph", "pid", "tid"):
            if k not in ev:
                problems.append(f"event {i}: missing {k!r}")
        ph = ev.get("ph")
        if ph == "X":
            for k in ("name", "ts", "dur"):
                if not isinstance(ev.get(k), (str if k == "name" else (int, float))):
                    problems.append(f"event {i}: X event needs {k}")
        elif ph == "M":
            if "name" not in ev:
                problems.append(f"event {i}: M event needs a name")
        elif ph in ("s", "t", "f"):
            if "id" not in ev:
                problems.append(f"event {i}: flow event needs an id")
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"event {i}: flow event needs numeric ts")
        elif ph not in ("B", "E", "i", "I", "C"):
            problems.append(f"event {i}: unknown phase {ph!r}")
    return problems


# -- per-pass breakdown (the Fig. 8 shape) --------------------------------

BREAKDOWN_COLUMNS = (
    "t_gmem_us", "t_smem_us", "t_exec_us", "t_latency_us", "t_overhead_us",
)


def pass_breakdown(source, algorithm: Optional[str] = None) -> List[Dict[str, Any]]:
    """Per-pass modeled-time rows from launch/replay spans.

    Each row decomposes one kernel pass into the cost model's roofline
    components (Fig. 8's stacked bars); ``modeled_us`` is the authoritative
    :class:`~repro.gpusim.cost.model.KernelTiming` total, so summing rows
    reproduces ``SatRun.time_us`` to the microsecond.  ``algorithm`` labels
    come from the enclosing ``sat`` span when present.
    """
    spans = _spans_of(source)
    by_id = {s.id: s for s in spans}
    rows: List[Dict[str, Any]] = []
    for sp in spans:
        if sp.category not in MODELED_CATEGORIES:
            continue
        algo = ""
        parent = by_id.get(sp.parent_id)
        while parent is not None:
            if parent.category in ("sat", "batch"):
                algo = parent.attrs.get("algorithm", "")
                break
            parent = by_id.get(parent.parent_id)
        if algorithm is not None and algo and algo != algorithm:
            continue
        row: Dict[str, Any] = {
            "algorithm": algo,
            "kernel": sp.name,
            "mode": sp.category,
            "bound": sp.attrs.get("bound", ""),
        }
        for col in BREAKDOWN_COLUMNS:
            row[col] = float(sp.attrs.get(col, 0.0))
        row["modeled_us"] = float(sp.attrs.get("modeled_us") or 0.0)
        rows.append(row)
    return rows


# -- Prometheus text exposition --------------------------------------------
#
# https://prometheus.io/docs/instrumenting/exposition_formats/ version
# 0.0.4: `# TYPE` headers, `name{labels} value` samples, histograms as
# cumulative `_bucket{le=...}` series plus `_sum`/`_count`.  The bucket
# upper bounds are the log-spaced bounds of
# :mod:`repro.obs.quantiles`, so a scraped `histogram_quantile()` agrees
# with the in-process `Histogram.quantile` estimates.

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$"
)


def _prom_name(name: str, suffix: str = "") -> str:
    return name.replace(".", "_").replace("-", "_") + suffix


def _prom_labels(labels, extra: str = "") -> str:
    parts = [
        '%s="%s"' % (k, str(v).replace("\\", r"\\").replace('"', r'\"')
                     .replace("\n", r"\n"))
        for k, v in labels
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    f = float(v)
    return str(int(f)) if f == int(f) else repr(f)


def to_prometheus(registry=None, prefix: str = "") -> str:
    """Render a metrics registry in Prometheus text exposition format.

    Counters become ``<name>_total``, gauges stay as-is, histograms emit
    the cumulative ``_bucket{le=...}`` series (log-spaced upper bounds)
    plus ``_sum``/``_count``.  Dots in instrument names become
    underscores (``serve.request_latency_us`` →
    ``serve_request_latency_us``).  ``prefix`` filters by the *original*
    dotted name.
    """
    from .metrics import get_metrics

    reg = registry if registry is not None else get_metrics()
    counters, gauges, histograms = reg.instruments()
    lines: List[str] = []

    def keep(name: str) -> bool:
        return name.startswith(prefix) if prefix else True

    by_family: Dict[str, List] = {}
    for (name, labels), inst in sorted(counters.items()):
        if keep(name):
            by_family.setdefault(_prom_name(name, "_total"), []).append(
                ("counter", labels, inst))
    for (name, labels), inst in sorted(gauges.items()):
        if keep(name):
            by_family.setdefault(_prom_name(name), []).append(
                ("gauge", labels, inst))
    for (name, labels), inst in sorted(histograms.items()):
        if keep(name):
            by_family.setdefault(_prom_name(name), []).append(
                ("histogram", labels, inst))

    for family in sorted(by_family):
        rows = by_family[family]
        kind = rows[0][0]
        lines.append(f"# TYPE {family} {kind}")
        for _, labels, inst in rows:
            if kind in ("counter", "gauge"):
                lines.append(f"{family}{_prom_labels(labels)} "
                             f"{_fmt(inst.value)}")
                continue
            # histogram: cumulative buckets over the shared log bounds
            with inst._lock:
                buckets = dict(inst.buckets)
                count, total = inst.count, inst.total
            cum = 0
            for idx in sorted(buckets):
                cum += buckets[idx]
                le = 'le="%s"' % _fmt(bucket_bounds(idx)[1])
                lines.append(
                    f"{family}_bucket{_prom_labels(labels, le)} {cum}"
                )
            inf = 'le="+Inf"'
            lines.append(
                f"{family}_bucket{_prom_labels(labels, inf)} {count}"
            )
            lines.append(f"{family}_sum{_prom_labels(labels)} {_fmt(total)}")
            lines.append(f"{family}_count{_prom_labels(labels)} {count}")
    return "\n".join(lines) + "\n"


def validate_prometheus_text(text: str) -> List[str]:
    """Check text against the exposition format; returns problems.

    Validates: every sample line parses as ``name{labels} value``, every
    sample family has a preceding ``# TYPE``, histogram families carry
    ``_bucket``/``_sum``/``_count`` with an ``le="+Inf"`` bucket, and
    bucket series are cumulative (non-decreasing with ``le``).
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    hist_seen: Dict[str, Dict[str, Any]] = {}
    for i, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            elif len(parts) >= 2 and parts[1] in ("HELP", "EOF"):
                pass
            else:
                problems.append(f"line {i}: malformed comment: {line!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {i}: unparsable sample: {line!r}")
            continue
        name, labels, _value = m.groups()
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base is not None and types.get(base) == "histogram":
                family = base
                st = hist_seen.setdefault(
                    base, {"bucket": False, "sum": False, "count": False,
                           "inf": False, "last_le": {}, "cumulative": True})
                st[suffix[1:]] = True
                if suffix == "_bucket":
                    le = None
                    if labels:
                        mm = re.search(r'le="([^"]+)"', labels)
                        le = mm.group(1) if mm else None
                    if le == "+Inf":
                        st["inf"] = True
                    series = re.sub(r'le="[^"]+",?', "", labels or "")
                    prev = st["last_le"].get(series)
                    cur = float(_value) if _value not in ("NaN",) else 0.0
                    if prev is not None and cur < prev:
                        st["cumulative"] = False
                    st["last_le"][series] = cur
                break
        if family not in types:
            problems.append(f"line {i}: sample {name!r} has no # TYPE")
    for base, st in hist_seen.items():
        for part in ("bucket", "sum", "count"):
            if not st[part]:
                problems.append(f"histogram {base!r}: missing _{part}")
        if not st["inf"]:
            problems.append(f"histogram {base!r}: no le=\"+Inf\" bucket")
        if not st["cumulative"]:
            problems.append(f"histogram {base!r}: buckets not cumulative")
    return problems
