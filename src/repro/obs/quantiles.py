"""Shared quantile math: exact percentiles and log-bucketed estimates.

One home for every percentile computed in the repo, so the serving
load generator (:mod:`repro.serve.loadgen`), the live bucketed
:class:`~repro.obs.metrics.Histogram` and the regression checker all
agree on definitions:

* :func:`percentiles` — exact percentiles over a sample list (NumPy's
  linear interpolation), the offline/batch path;
* the ``bucket_*`` family — fixed log-spaced buckets for **streaming**
  estimation: O(1) per observation, bounded storage, and a quantile
  error bounded by one bucket width (:data:`GROWTH` ≈ 19% per bucket).

The bucket layout is shared with the Prometheus exposition endpoint
(:func:`repro.obs.exporters.to_prometheus`), so a scraped
``histogram_quantile`` and the in-process ``Histogram.quantile`` answer
from the same bins.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "GROWTH",
    "UNDERFLOW_INDEX",
    "DEFAULT_PERCENTILES",
    "percentiles",
    "bucket_index",
    "bucket_bounds",
    "bucket_quantile",
    "bucket_quantiles",
]

#: Geometric growth factor between consecutive bucket upper bounds.
#: ``2 ** 0.25`` ≈ 1.189 gives ~19% relative bucket width — 4 buckets
#: per octave, ~80 buckets per µs-to-seconds latency range.
GROWTH = 2.0 ** 0.25

_LOG_GROWTH = math.log(GROWTH)

#: Bucket index holding every non-positive observation (latencies and
#: sizes are positive; zero shows up from e.g. cached sub-µs waits).
UNDERFLOW_INDEX = -(2 ** 31)

#: The percentiles every latency distribution reports by default.
DEFAULT_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


def percentiles(
    values: Sequence[float],
    ps: Iterable[float] = DEFAULT_PERCENTILES,
) -> Dict[str, float]:
    """Exact percentiles of ``values`` as ``{"p50": ..., "p95": ...}``.

    Empty input returns an empty dict — callers that previously guarded
    ``if latencies:`` keep the same shape.
    """
    vals = list(values)
    if not vals:
        return {}
    import numpy as np

    arr = np.asarray(vals, dtype=np.float64)
    return {f"p{p:g}": float(np.percentile(arr, p)) for p in ps}


def bucket_index(v: float) -> int:
    """The log-bucket index of ``v``: bucket ``i`` covers
    ``(GROWTH**i, GROWTH**(i+1)]`` (non-positives go to the underflow
    bucket)."""
    if v <= 0.0:
        return UNDERFLOW_INDEX
    # ceil(log(v)) - 1 with an exactness nudge so bucket upper bounds
    # land in their own bucket (the "le" convention Prometheus uses).
    idx = math.ceil(math.log(v) / _LOG_GROWTH - 1e-9) - 1
    return int(idx)


def bucket_bounds(index: int) -> Tuple[float, float]:
    """``(lower, upper]`` value bounds of bucket ``index``."""
    if index == UNDERFLOW_INDEX:
        return (float("-inf"), 0.0)
    return (GROWTH ** index, GROWTH ** (index + 1))


def bucket_quantile(
    buckets: Mapping[int, int],
    q: float,
    lo: float = float("nan"),
    hi: float = float("nan"),
) -> float:
    """Estimate the ``q``-quantile (``0 <= q <= 1``) from bucket counts.

    Linear interpolation by rank inside the covering bucket, clamped to
    the observed ``[lo, hi]`` when those are finite — so the estimate is
    never outside the data range and is within one bucket width of the
    exact sample quantile.  Empty input returns 0.0.
    """
    total = sum(buckets.values())
    if total <= 0:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    rank = q * total
    seen = 0.0
    for idx in sorted(buckets):
        n = buckets[idx]
        if n <= 0:
            continue
        if seen + n >= rank:
            b_lo, b_hi = bucket_bounds(idx)
            if idx == UNDERFLOW_INDEX:
                est = 0.0
            else:
                frac = (rank - seen) / n if n else 1.0
                est = b_lo + (b_hi - b_lo) * min(1.0, max(0.0, frac))
            if not math.isnan(lo):
                est = max(est, lo)
            if not math.isnan(hi):
                est = min(est, hi)
            return est
        seen += n
    # Rounding fell off the end: the maximum bucket's upper bound.
    top = max(i for i in buckets if buckets[i] > 0)
    est = bucket_bounds(top)[1]
    return min(est, hi) if not math.isnan(hi) else est


def bucket_quantiles(
    buckets: Mapping[int, int],
    ps: Iterable[float] = DEFAULT_PERCENTILES,
    lo: float = float("nan"),
    hi: float = float("nan"),
) -> Dict[str, float]:
    """Several :func:`bucket_quantile` estimates keyed ``"p50"``-style."""
    return {f"p{p:g}": bucket_quantile(buckets, p / 100.0, lo, hi)
            for p in ps}
