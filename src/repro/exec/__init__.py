"""repro.exec — execution configuration, kernel specs and backends.

The package's execution layer: :class:`ExecutionConfig` is the single
resolution path for every mode knob (fused path, sanitizer, bounds
checking, backend, device), and the kernel/backend registry maps each SAT
algorithm's one :class:`KernelSpec` onto interchangeable executors
(``gpusim``, ``host``).  See ``docs/architecture.md``.

This ``__init__`` intentionally imports only the cycle-free submodules
(:mod:`.config`, :mod:`.registry`); the built-in backends of
:mod:`.backends` load lazily on first :func:`get_backend` call.
"""

from .config import (
    ENV_VARS,
    PROFILES,
    ExecutionConfig,
    env_flag,
    execution,
    get_default_config,
    resolve_execution,
    set_default_config,
)
from .registry import (
    BatchPass,
    BatchSpec,
    KernelSpec,
    PassSpec,
    backend_names,
    get_backend,
    get_kernel_spec,
    has_kernel_spec,
    kernel_spec_names,
    register_backend,
    register_kernel_spec,
)

__all__ = [
    "ENV_VARS",
    "PROFILES",
    "ExecutionConfig",
    "env_flag",
    "execution",
    "get_default_config",
    "resolve_execution",
    "set_default_config",
    "BatchPass",
    "BatchSpec",
    "KernelSpec",
    "PassSpec",
    "backend_names",
    "get_backend",
    "get_kernel_spec",
    "has_kernel_spec",
    "kernel_spec_names",
    "register_backend",
    "register_kernel_spec",
]
