"""Built-in execution backends: gpusim, host and the tape-compiled executor.

All consume the same :class:`~repro.exec.registry.KernelSpec` — geometry,
batch axes and pass semantics are declared once per algorithm and the
backend supplies only the execution substrate:

* ``gpusim`` — the warp-synchronous simulator (counters, cost model,
  sanitizer); the default and the recorder every other mode trusts.
* ``host`` — pure NumPy per-pass ``host`` semantics; no launches, no
  modeled time.
* ``compiled`` — cold calls run the simulator and record a launch plan,
  which is lowered (:mod:`repro.compile`) into a closed-form NumPy
  program; warm calls execute that program with zero interpreter steps
  and clone the recorded counters/timings.  Sanitized or bounds-checked
  calls delegate to the interpreted path — the sanitizer is the trusted
  slow mode and never runs over compiled code.

Importing this module registers the backends;
:func:`repro.exec.registry.get_backend` does so lazily, so nothing below
the API layer needs to import it.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import replace
from typing import Mapping, Optional, Tuple

import numpy as np

from ..dtypes import TypePair
from ..gpusim.device import get_device
from ..gpusim.global_mem import GlobalArray
from ..gpusim.launch import LaunchStats, launch_kernel
from ..obs.context import timeline_count
from ..obs.metrics import get_metrics
from ..obs.trace import current_tracer
from ..sat.common import SatRun, crop, pad_matrix, regs_per_thread
from .config import resolve_execution
from .registry import KernelSpec, PassSpec, register_backend

__all__ = [
    "GpusimBackend",
    "HostBackend",
    "CompiledBackend",
    "launch_pass",
    "ensure_compiled",
]


def launch_pass(
    p: PassSpec,
    src: GlobalArray,
    *,
    acc,
    device,
    opts: Optional[Mapping] = None,
    name: Optional[str] = None,
    sanitize: Optional[bool] = None,
    bounds_check: Optional[bool] = None,
) -> Tuple[GlobalArray, LaunchStats]:
    """Launch one spec'd pass over ``src`` on the simulator.

    The grid/block dims, output shape, register footprint, MLP and kernel
    arguments all come from the :class:`PassSpec`; returns ``(dst, stats)``
    like the historical per-kernel ``*_pass`` helpers.
    """
    dev = get_device(device)
    h, w = src.shape
    grid, block = p.geometry(h, w, acc, dev)
    out_shape = (w, h) if p.transposed else (h, w)
    kname = name or p.name
    dst = GlobalArray.empty(out_shape, acc.np_dtype, name=f"{kname}_out")
    stats = launch_kernel(
        p.kernel,
        device=dev,
        grid=grid,
        block=block,
        regs_per_thread=regs_per_thread(acc),
        args=(src, dst) + p.extra_args(opts or {}),
        name=kname,
        mlp=p.mlp,
        sanitize=sanitize,
        bounds_check=bounds_check,
    )
    return dst, stats


class GpusimBackend:
    """Execute a :class:`KernelSpec` on the warp-synchronous simulator."""

    name = "gpusim"

    def run(
        self,
        spec: KernelSpec,
        image: np.ndarray,
        *,
        tp: TypePair,
        device,
        opts: Optional[Mapping] = None,
        fused: Optional[bool] = None,
        sanitize: Optional[bool] = None,
        bounds_check: Optional[bool] = None,
    ) -> SatRun:
        dev = get_device(device)
        orig = image.shape
        padded = pad_matrix(image.astype(tp.input.np_dtype, copy=False), *spec.pad)
        pass_opts = dict(opts or {})
        if fused is not None:
            pass_opts["fused"] = fused
        tracer = current_tracer()
        with (tracer.span(f"sat:{spec.algorithm}", category="sat",
                          algorithm=spec.algorithm, backend=self.name,
                          device=dev.name, pair=tp.name, shape=orig)
              if tracer is not None else nullcontext()) as sp:
            cur = GlobalArray(padded, "input")
            launches = []
            for p in spec.passes:
                cur, stats = launch_pass(
                    p, cur, acc=tp.output, device=dev, opts=pass_opts,
                    sanitize=sanitize, bounds_check=bounds_check,
                )
                launches.append(stats)
        run = SatRun(
            output=crop(cur.to_host(), orig),
            launches=launches,
            algorithm=spec.algorithm,
            device=dev.name,
            pair=tp.name,
        )
        if sp is not None:
            sp.attrs["modeled_us"] = run.time_us
        m = get_metrics()
        m.counter("sat.calls", algorithm=spec.algorithm, backend=self.name).inc()
        m.histogram("sat.modeled_us", algorithm=spec.algorithm).observe(run.time_us)
        return run


class HostBackend:
    """Execute a :class:`KernelSpec` with pure NumPy (no simulator).

    Each pass runs its declared ``host`` semantics function over the same
    padded/accumulator-typed array flow the kernels see, so outputs match
    the gpusim backend (bit-exactly for integer accumulators, within
    summation-order tolerance for floats).  There are no launches and no
    modeled time: the returned run has ``time_us is None``.
    """

    name = "host"

    def run(
        self,
        spec: KernelSpec,
        image: np.ndarray,
        *,
        tp: TypePair,
        device="host",
        opts: Optional[Mapping] = None,
        fused: Optional[bool] = None,
        sanitize: Optional[bool] = None,
        bounds_check: Optional[bool] = None,
    ) -> SatRun:
        orig = image.shape
        padded = pad_matrix(image.astype(tp.input.np_dtype, copy=False), *spec.pad)
        cur = padded.astype(tp.output.np_dtype)
        tracer = current_tracer()
        with (tracer.span(f"sat:{spec.algorithm}", category="sat",
                          algorithm=spec.algorithm, backend=self.name,
                          pair=tp.name, shape=orig)
              if tracer is not None else nullcontext()):
            for p in spec.passes:
                with (tracer.span(p.name, category="pass.host")
                      if tracer is not None else nullcontext()):
                    cur = p.host(cur)
        get_metrics().counter(
            "sat.calls", algorithm=spec.algorithm, backend=self.name
        ).inc()
        return SatRun(
            output=np.ascontiguousarray(crop(cur, orig)),
            launches=[],
            algorithm=spec.algorithm,
            device=getattr(device, "name", str(device)),
            pair=tp.name,
            backend="host",
        )


def ensure_compiled(plan, spec: KernelSpec, tp: TypePair,
                    opts: Optional[Mapping] = None) -> bool:
    """Lower ``plan`` into its compiled program if not already done.

    Returns whether ``plan.compiled`` is available afterwards.  A
    deterministic :class:`~repro.compile.lower.CompileError` pins the
    plan's attempt budget so the bucket stays on the interpreted path;
    compile outcomes are exported as ``compile.miss`` (a fresh successful
    lowering) and ``compile.fallback`` (lowering refused) counters plus a
    warning-level ``compile.fallback`` trace event.
    """
    if plan.compiled is not None:
        return True
    if not plan.recorded or plan.compile_attempts >= plan.MAX_COMPILE_ATTEMPTS:
        return False
    from ..compile.lower import CompileError, compile_plan

    m = get_metrics()
    tracer = current_tracer()
    plan.compile_attempts += 1
    try:
        with (tracer.span(f"compile:{spec.algorithm}", category="compile",
                          algorithm=spec.algorithm, pair=tp.name,
                          bucket=plan.key.bucket)
              if tracer is not None else nullcontext()):
            plan.compiled = compile_plan(spec, plan.launch_plans, tp, opts)
        m.counter("compile.miss", algorithm=spec.algorithm).inc()
        timeline_count("compile_misses")
        return True
    except CompileError as e:
        plan.compile_attempts = plan.MAX_COMPILE_ATTEMPTS
        m.counter("compile.fallback", algorithm=spec.algorithm).inc()
        timeline_count("compile_fallbacks")
        if tracer is not None:
            tracer.event("compile.fallback", category="compile",
                         level="warning", algorithm=spec.algorithm,
                         reason=str(e))
        return False


class CompiledBackend:
    """Execute a :class:`KernelSpec` through tape-compiled launch plans.

    Plans live in the default engine's :class:`~repro.engine.plan.
    LaunchPlanCache` (keyed with ``backend="compiled"``), so single
    ``sat()`` calls and ``sat_batch()`` share warm programs.  The
    lifecycle per shape bucket:

    * **cold** — run the fully-accounted simulator, record the launch
      plan, lower it; the returned run carries the real recorded counters
      and timings.
    * **warm** — execute the compiled program (zero interpreter steps);
      counters/timings are clones of the recorded cold launch.
    * **fallback** — sanitize/bounds-check requests, lowering failures
      and execute-time errors all land on the interpreted ``gpusim``
      path (``compile.fallback``); execute-time errors also drop the
      program so the next call may recompile from the recorded plan.
    """

    name = "compiled"

    def run(
        self,
        spec: KernelSpec,
        image: np.ndarray,
        *,
        tp: TypePair,
        device,
        opts: Optional[Mapping] = None,
        fused: Optional[bool] = None,
        sanitize: Optional[bool] = None,
        bounds_check: Optional[bool] = None,
    ) -> SatRun:
        if fused is None or sanitize is None or bounds_check is None:
            res = resolve_execution(fused=fused, sanitize=sanitize,
                                    bounds_check=bounds_check)
            fused, sanitize, bounds_check = (
                res.fused, res.sanitize, res.bounds_check
            )
        gpusim = _GPUSIM
        if sanitize or bounds_check:
            # Trusted slow modes stay fully interpreted and instrumented.
            return gpusim.run(spec, image, tp=tp, device=device, opts=opts,
                              fused=fused, sanitize=sanitize,
                              bounds_check=bounds_check)
        from ..engine.batch import default_engine
        from ..engine.plan import PlanKey

        dev = get_device(device)
        orig = image.shape
        pass_opts = dict(opts or {})
        bucket = ((-orig[0]) % spec.pad[0] + orig[0],
                  (-orig[1]) % spec.pad[1] + orig[1])
        cache = default_engine().cache
        key = PlanKey.make(
            spec.algorithm, dev.name, tp.name, bucket,
            dict(pass_opts, fused=fused, bounds_check=bounds_check),
            backend=self.name,
        )
        plan = cache.get_or_create(
            key, spec.batch_spec(tp, dev, fused=fused, **pass_opts)
        )
        m = get_metrics()
        tracer = current_tracer()

        if not plan.recorded:
            cache.note_miss()
            run0 = gpusim.run(spec, image, tp=tp, device=dev, opts=pass_opts,
                              fused=fused, sanitize=False, bounds_check=False)
            for lp, s in zip(plan.launch_plans, run0.launches):
                lp.record(replace(s, counters=s.counters.copy()))
            ensure_compiled(plan, spec, tp, dict(pass_opts, fused=fused))
            # The cold run *is* the recorded template; report it under
            # this backend so callers see one consistent executor.
            run0.backend = self.name
            m.counter("sat.calls", algorithm=spec.algorithm,
                      backend=self.name).inc()
            return run0

        cache.note_hit()
        if not ensure_compiled(plan, spec, tp, dict(pass_opts, fused=fused)):
            return gpusim.run(spec, image, tp=tp, device=dev, opts=pass_opts,
                              fused=fused, sanitize=False, bounds_check=False)
        padded = pad_matrix(image.astype(tp.input.np_dtype, copy=False),
                            *spec.pad)
        try:
            with (tracer.span(f"sat:{spec.algorithm}", category="sat",
                              algorithm=spec.algorithm, backend=self.name,
                              device=dev.name, pair=tp.name, shape=orig)
                  if tracer is not None else nullcontext()) as sp:
                out3 = plan.compiled.run(
                    padded[None].astype(tp.output.np_dtype)
                )
        except Exception as e:
            # Execute-time divergence: drop the program (the recorded plan
            # stays) and rerun interpreted; the next call may recompile.
            plan.compiled = None
            m.counter("compile.fallback", algorithm=spec.algorithm).inc()
            if tracer is not None:
                tracer.event("compile.fallback", category="compile",
                             level="warning", algorithm=spec.algorithm,
                             reason=str(e))
            return gpusim.run(spec, image, tp=tp, device=dev, opts=pass_opts,
                              fused=fused, sanitize=False, bounds_check=False)
        run = SatRun(
            output=np.ascontiguousarray(crop(out3[0], orig)),
            launches=[lp.clone_stats() for lp in plan.launch_plans],
            algorithm=spec.algorithm,
            device=dev.name,
            pair=tp.name,
            backend=self.name,
        )
        if sp is not None:
            sp.attrs["modeled_us"] = run.time_us
        m.counter("compile.hit", algorithm=spec.algorithm).inc()
        m.counter("sat.calls", algorithm=spec.algorithm,
                  backend=self.name).inc()
        m.histogram("sat.modeled_us", algorithm=spec.algorithm).observe(
            run.time_us
        )
        return run


_GPUSIM = GpusimBackend()

register_backend("gpusim", _GPUSIM)
register_backend("host", HostBackend())
register_backend("compiled", CompiledBackend())
