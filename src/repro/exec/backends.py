"""Built-in execution backends: the gpusim simulator and the host executor.

Both consume the same :class:`~repro.exec.registry.KernelSpec` — geometry,
batch axes and pass semantics are declared once per algorithm and the
backend supplies only the execution substrate.  Importing this module
registers both backends; :func:`repro.exec.registry.get_backend` does so
lazily, so nothing below the API layer needs to import it.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Mapping, Optional, Tuple

import numpy as np

from ..dtypes import TypePair
from ..gpusim.device import get_device
from ..gpusim.global_mem import GlobalArray
from ..gpusim.launch import LaunchStats, launch_kernel
from ..obs.metrics import get_metrics
from ..obs.trace import current_tracer
from ..sat.common import SatRun, crop, pad_matrix, regs_per_thread
from .registry import KernelSpec, PassSpec, register_backend

__all__ = ["GpusimBackend", "HostBackend", "launch_pass"]


def launch_pass(
    p: PassSpec,
    src: GlobalArray,
    *,
    acc,
    device,
    opts: Optional[Mapping] = None,
    name: Optional[str] = None,
    sanitize: Optional[bool] = None,
    bounds_check: Optional[bool] = None,
) -> Tuple[GlobalArray, LaunchStats]:
    """Launch one spec'd pass over ``src`` on the simulator.

    The grid/block dims, output shape, register footprint, MLP and kernel
    arguments all come from the :class:`PassSpec`; returns ``(dst, stats)``
    like the historical per-kernel ``*_pass`` helpers.
    """
    dev = get_device(device)
    h, w = src.shape
    grid, block = p.geometry(h, w, acc, dev)
    out_shape = (w, h) if p.transposed else (h, w)
    kname = name or p.name
    dst = GlobalArray.empty(out_shape, acc.np_dtype, name=f"{kname}_out")
    stats = launch_kernel(
        p.kernel,
        device=dev,
        grid=grid,
        block=block,
        regs_per_thread=regs_per_thread(acc),
        args=(src, dst) + p.extra_args(opts or {}),
        name=kname,
        mlp=p.mlp,
        sanitize=sanitize,
        bounds_check=bounds_check,
    )
    return dst, stats


class GpusimBackend:
    """Execute a :class:`KernelSpec` on the warp-synchronous simulator."""

    name = "gpusim"

    def run(
        self,
        spec: KernelSpec,
        image: np.ndarray,
        *,
        tp: TypePair,
        device,
        opts: Optional[Mapping] = None,
        fused: Optional[bool] = None,
        sanitize: Optional[bool] = None,
        bounds_check: Optional[bool] = None,
    ) -> SatRun:
        dev = get_device(device)
        orig = image.shape
        padded = pad_matrix(image.astype(tp.input.np_dtype, copy=False), *spec.pad)
        pass_opts = dict(opts or {})
        if fused is not None:
            pass_opts["fused"] = fused
        tracer = current_tracer()
        with (tracer.span(f"sat:{spec.algorithm}", category="sat",
                          algorithm=spec.algorithm, backend=self.name,
                          device=dev.name, pair=tp.name, shape=orig)
              if tracer is not None else nullcontext()) as sp:
            cur = GlobalArray(padded, "input")
            launches = []
            for p in spec.passes:
                cur, stats = launch_pass(
                    p, cur, acc=tp.output, device=dev, opts=pass_opts,
                    sanitize=sanitize, bounds_check=bounds_check,
                )
                launches.append(stats)
        run = SatRun(
            output=crop(cur.to_host(), orig),
            launches=launches,
            algorithm=spec.algorithm,
            device=dev.name,
            pair=tp.name,
        )
        if sp is not None:
            sp.attrs["modeled_us"] = run.time_us
        m = get_metrics()
        m.counter("sat.calls", algorithm=spec.algorithm, backend=self.name).inc()
        m.histogram("sat.modeled_us", algorithm=spec.algorithm).observe(run.time_us)
        return run


class HostBackend:
    """Execute a :class:`KernelSpec` with pure NumPy (no simulator).

    Each pass runs its declared ``host`` semantics function over the same
    padded/accumulator-typed array flow the kernels see, so outputs match
    the gpusim backend (bit-exactly for integer accumulators, within
    summation-order tolerance for floats).  There are no launches and no
    modeled time: the returned run has ``time_us is None``.
    """

    name = "host"

    def run(
        self,
        spec: KernelSpec,
        image: np.ndarray,
        *,
        tp: TypePair,
        device="host",
        opts: Optional[Mapping] = None,
        fused: Optional[bool] = None,
        sanitize: Optional[bool] = None,
        bounds_check: Optional[bool] = None,
    ) -> SatRun:
        orig = image.shape
        padded = pad_matrix(image.astype(tp.input.np_dtype, copy=False), *spec.pad)
        cur = padded.astype(tp.output.np_dtype)
        tracer = current_tracer()
        with (tracer.span(f"sat:{spec.algorithm}", category="sat",
                          algorithm=spec.algorithm, backend=self.name,
                          pair=tp.name, shape=orig)
              if tracer is not None else nullcontext()):
            for p in spec.passes:
                with (tracer.span(p.name, category="pass.host")
                      if tracer is not None else nullcontext()):
                    cur = p.host(cur)
        get_metrics().counter(
            "sat.calls", algorithm=spec.algorithm, backend=self.name
        ).inc()
        return SatRun(
            output=np.ascontiguousarray(crop(cur, orig)),
            launches=[],
            algorithm=spec.algorithm,
            device=getattr(device, "name", str(device)),
            pair=tp.name,
            backend="host",
        )


register_backend("gpusim", GpusimBackend())
register_backend("host", HostBackend())
