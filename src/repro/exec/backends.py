"""Built-in execution backends: the gpusim simulator and the host executor.

Both consume the same :class:`~repro.exec.registry.KernelSpec` — geometry,
batch axes and pass semantics are declared once per algorithm and the
backend supplies only the execution substrate.  Importing this module
registers both backends; :func:`repro.exec.registry.get_backend` does so
lazily, so nothing below the API layer needs to import it.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

import numpy as np

from ..dtypes import TypePair
from ..gpusim.device import get_device
from ..gpusim.global_mem import GlobalArray
from ..gpusim.launch import LaunchStats, launch_kernel
from ..sat.common import SatRun, crop, pad_matrix, regs_per_thread
from .registry import KernelSpec, PassSpec, register_backend

__all__ = ["GpusimBackend", "HostBackend", "launch_pass"]


def launch_pass(
    p: PassSpec,
    src: GlobalArray,
    *,
    acc,
    device,
    opts: Optional[Mapping] = None,
    name: Optional[str] = None,
    sanitize: Optional[bool] = None,
    bounds_check: Optional[bool] = None,
) -> Tuple[GlobalArray, LaunchStats]:
    """Launch one spec'd pass over ``src`` on the simulator.

    The grid/block dims, output shape, register footprint, MLP and kernel
    arguments all come from the :class:`PassSpec`; returns ``(dst, stats)``
    like the historical per-kernel ``*_pass`` helpers.
    """
    dev = get_device(device)
    h, w = src.shape
    grid, block = p.geometry(h, w, acc, dev)
    out_shape = (w, h) if p.transposed else (h, w)
    kname = name or p.name
    dst = GlobalArray.empty(out_shape, acc.np_dtype, name=f"{kname}_out")
    stats = launch_kernel(
        p.kernel,
        device=dev,
        grid=grid,
        block=block,
        regs_per_thread=regs_per_thread(acc),
        args=(src, dst) + p.extra_args(opts or {}),
        name=kname,
        mlp=p.mlp,
        sanitize=sanitize,
        bounds_check=bounds_check,
    )
    return dst, stats


class GpusimBackend:
    """Execute a :class:`KernelSpec` on the warp-synchronous simulator."""

    name = "gpusim"

    def run(
        self,
        spec: KernelSpec,
        image: np.ndarray,
        *,
        tp: TypePair,
        device,
        opts: Optional[Mapping] = None,
        fused: Optional[bool] = None,
        sanitize: Optional[bool] = None,
        bounds_check: Optional[bool] = None,
    ) -> SatRun:
        dev = get_device(device)
        orig = image.shape
        padded = pad_matrix(image.astype(tp.input.np_dtype, copy=False), *spec.pad)
        pass_opts = dict(opts or {})
        if fused is not None:
            pass_opts["fused"] = fused
        cur = GlobalArray(padded, "input")
        launches = []
        for p in spec.passes:
            cur, stats = launch_pass(
                p, cur, acc=tp.output, device=dev, opts=pass_opts,
                sanitize=sanitize, bounds_check=bounds_check,
            )
            launches.append(stats)
        return SatRun(
            output=crop(cur.to_host(), orig),
            launches=launches,
            algorithm=spec.algorithm,
            device=dev.name,
            pair=tp.name,
        )


class HostBackend:
    """Execute a :class:`KernelSpec` with pure NumPy (no simulator).

    Each pass runs its declared ``host`` semantics function over the same
    padded/accumulator-typed array flow the kernels see, so outputs match
    the gpusim backend (bit-exactly for integer accumulators, within
    summation-order tolerance for floats).  There are no launches and no
    modeled time: the returned run has ``time_us is None``.
    """

    name = "host"

    def run(
        self,
        spec: KernelSpec,
        image: np.ndarray,
        *,
        tp: TypePair,
        device="host",
        opts: Optional[Mapping] = None,
        fused: Optional[bool] = None,
        sanitize: Optional[bool] = None,
        bounds_check: Optional[bool] = None,
    ) -> SatRun:
        orig = image.shape
        padded = pad_matrix(image.astype(tp.input.np_dtype, copy=False), *spec.pad)
        cur = padded.astype(tp.output.np_dtype)
        for p in spec.passes:
            cur = p.host(cur)
        return SatRun(
            output=np.ascontiguousarray(crop(cur, orig)),
            launches=[],
            algorithm=spec.algorithm,
            device=getattr(device, "name", str(device)),
            pair=tp.name,
            backend="host",
        )


register_backend("gpusim", GpusimBackend())
register_backend("host", HostBackend())
