"""Kernel-description and backend registries.

A :class:`KernelSpec` is the single declaration of how one SAT algorithm
executes: per pass, the kernel body, the launch geometry (grid/block as a
function of the padded shape), the batch-stacking axes and the replay
grid axis.  The three paper kernels register their specs at import time
(:mod:`repro.sat.brlt_scanrow` and friends); drivers — the public
:func:`repro.sat` API, the batched engine, benchmarks — read the spec
instead of hard-coding geometry per call site.

A *backend* executes a :class:`KernelSpec`.  Two ship with the package:

* ``gpusim`` — the warp-synchronous simulator (counters, cost model,
  sanitizer); the default.
* ``host``  — a pure-NumPy executor that runs each pass's ``host``
  semantics function.  No launches, no modeled time (``time_us is None``)
  — it exists to cross-check kernel semantics and to prove the registry
  decouples the algorithm description from the executor (the shape a
  real-GPU backend would also plug into).

This module imports nothing from the rest of the package (built-in
backends are registered lazily on first lookup), so any layer can import
it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "PassSpec",
    "KernelSpec",
    "BatchPass",
    "BatchSpec",
    "register_kernel_spec",
    "get_kernel_spec",
    "kernel_spec_names",
    "has_kernel_spec",
    "register_backend",
    "get_backend",
    "backend_names",
    "register_sharder",
    "get_sharder",
    "sharder_names",
]


@dataclass(frozen=True)
class PassSpec:
    """One kernel pass of a SAT algorithm — geometry declared once.

    ``geometry(h, w, acc, device)`` returns the ``(grid, block)`` launch
    dims for a padded ``h x w`` input with accumulator dtype ``acc``;
    ``extra_args(opts)`` builds the trailing kernel arguments after
    ``(src, dst)`` from the algorithm options (including the resolved
    ``fused`` mode); ``host(arr)`` is the pass's mathematical semantics on
    a host array (already in the accumulator dtype), used by the ``host``
    backend and by nothing else; ``lower(stats, tp, opts)`` (optional)
    returns the pass's closed-form NumPy program for the ``compiled``
    backend — a ``(depth, H, W) -> (depth, H', W')`` function bit-identical
    to the kernel, built from the *recorded* launch stats (see
    :mod:`repro.compile`).
    """

    #: Display/launch name, e.g. ``"BRLT-ScanRow#1"``.
    name: str
    #: Kernel body, invoked as ``kernel(ctx, src, dst, *extra_args)``.
    kernel: Callable
    #: ``(h, w, acc, device) -> (grid, block)`` for a padded input.
    geometry: Callable[..., Tuple[tuple, tuple]]
    #: ``(opts: Mapping) -> tuple`` of trailing kernel arguments.
    extra_args: Callable[[Mapping], tuple]
    #: Pure-NumPy pass semantics: ``(array in acc dtype) -> array``.
    host: Callable
    #: Grid axis ("x" or "y") scaled by the batch depth on stacked replay.
    grid_axis: str
    #: Matrix axis the *input* images stack along ("rows" or "cols").
    stack_in: str
    #: Matrix axis the *output* images come out stacked along.
    stack_out: str
    #: Whether the per-image output shape is the input shape transposed.
    transposed: bool
    #: Outstanding loads per warp fed to the cost model.
    mlp: int = 32
    #: Optional tape-compiler hook: ``(LaunchStats, TypePair, opts) ->
    #: callable`` lowering this pass for the ``compiled`` backend, or
    #: ``None`` when the pass cannot be compiled.
    lower: Optional[Callable] = None


@dataclass(frozen=True)
class KernelSpec:
    """Complete execution description of one SAT algorithm."""

    algorithm: str
    #: (row, col) pad multiples — also the plan-cache bucket granularity.
    pad: Tuple[int, int]
    passes: Tuple[PassSpec, ...]

    def batch_spec(self, tp=None, device=None, **opts) -> "BatchSpec":
        """The batch-stacking recipe, with ``opts`` bound into each pass's
        kernel arguments (the shape the engine consumes)."""
        return BatchSpec(
            pad=self.pad,
            passes=tuple(
                BatchPass(
                    kernel=p.kernel,
                    name=p.name,
                    extra_args=p.extra_args(opts),
                    grid_axis=p.grid_axis,
                    stack_in=p.stack_in,
                    stack_out=p.stack_out,
                    transposed=p.transposed,
                )
                for p in self.passes
            ),
        )


@dataclass(frozen=True)
class BatchPass:
    """One pass of a :class:`BatchSpec`: a :class:`PassSpec` with its
    kernel arguments bound to a concrete options set.

    All of the paper's kernels parallelise over independent blocks along
    exactly one grid axis (row bands or column stripes) while carries run
    along the *other* matrix axis.  A batch of same-bucket images can
    therefore be concatenated along the grid-parallel matrix axis and run
    as a single launch with that grid axis scaled by the batch depth —
    block-for-block the same work as the solo launches, so the per-image
    data is bit-identical (see docs/engine.md).
    """

    kernel: Callable
    name: str
    #: Trailing kernel arguments after ``(src, dst)``.
    extra_args: tuple
    grid_axis: str
    stack_in: str
    stack_out: str
    transposed: bool


@dataclass(frozen=True)
class BatchSpec:
    """Batch-execution recipe of one SAT algorithm (all its passes)."""

    pad: Tuple[int, int]
    passes: Tuple[BatchPass, ...]


# -- kernel-spec registry --------------------------------------------------

_KERNEL_SPECS: Dict[str, KernelSpec] = {}


def register_kernel_spec(spec: KernelSpec) -> KernelSpec:
    """Register (or replace) the spec for ``spec.algorithm``."""
    _KERNEL_SPECS[spec.algorithm] = spec
    return spec


def _ensure_builtin_specs() -> None:
    if not _KERNEL_SPECS:
        # Importing the kernels registers their specs as a side effect.
        import repro.sat.api  # noqa: F401


def get_kernel_spec(algorithm: str) -> KernelSpec:
    """The registered :class:`KernelSpec` for ``algorithm``."""
    _ensure_builtin_specs()
    try:
        return _KERNEL_SPECS[algorithm]
    except KeyError:
        raise KeyError(
            f"no kernel spec registered for {algorithm!r}; available: "
            f"{sorted(_KERNEL_SPECS)}"
        ) from None


def kernel_spec_names() -> List[str]:
    """Registered algorithm names, sorted."""
    _ensure_builtin_specs()
    return sorted(_KERNEL_SPECS)


def has_kernel_spec(algorithm: str) -> bool:
    _ensure_builtin_specs()
    return algorithm in _KERNEL_SPECS


# -- backend registry ------------------------------------------------------

_BACKENDS: Dict[str, object] = {}


def register_backend(name: str, backend) -> None:
    """Register an executor under ``name`` (see :mod:`repro.exec.backends`)."""
    _BACKENDS[name] = backend


def _ensure_builtin_backends() -> None:
    if "gpusim" not in _BACKENDS:
        # Importing the module registers the gpusim and host backends.
        from . import backends  # noqa: F401


def get_backend(name: str):
    """The backend registered under ``name``; ``ValueError`` if unknown."""
    _ensure_builtin_backends()
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {sorted(_BACKENDS)}"
        ) from None


def backend_names() -> List[str]:
    """Registered backend names, sorted."""
    _ensure_builtin_backends()
    return sorted(_BACKENDS)


# -- sharder registry ------------------------------------------------------
#
# A *sharder* splits one oversized call into a tiled multi-device run.  It
# exposes ``wants(shape, shard)`` (should this call shard?) and
# ``run(image, **kwargs)`` (execute it).  The public :func:`repro.sat.api.sat`
# consults the default sharder so gigapixel inputs shard transparently;
# direct drivers (the engine's ``run_batch``, the harness) call kernels
# through ``ALGORITHMS`` and bypass it.

_SHARDERS: Dict[str, object] = {}


def register_sharder(name: str, sharder) -> None:
    """Register a sharder under ``name`` (see :mod:`repro.shard`)."""
    _SHARDERS[name] = sharder


def _ensure_builtin_sharders() -> None:
    if "tiled" not in _SHARDERS:
        # Importing the package registers the tiled sharder.
        import repro.shard  # noqa: F401


def get_sharder(name: str = "tiled"):
    """The sharder registered under ``name``; ``ValueError`` if unknown."""
    _ensure_builtin_sharders()
    try:
        return _SHARDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown sharder {name!r}; registered: {sorted(_SHARDERS)}"
        ) from None


def sharder_names() -> List[str]:
    """Registered sharder names, sorted."""
    _ensure_builtin_sharders()
    return sorted(_SHARDERS)
