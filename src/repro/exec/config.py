"""Execution-mode configuration: one resolution path for every knob.

Every execution dimension of the package — fused vs. legacy register
path, kernel sanitizer, global-memory bounds checking, backend selection
and the default simulated device — resolves through this module.  The
precedence order, highest first:

1. **explicit keyword** at a call site (``sat(img, fused=False)``);
2. **per-call config** object (``sat(img, config=ExecutionConfig(...))``);
3. **context manager / installed default** (``with execution(sanitize=True):``,
   innermost context first, then :func:`set_default_config`);
4. **environment**: the per-field ``REPRO_GPUSIM_*`` / ``REPRO_EXEC_*``
   variables, then the named profile selected by ``REPRO_EXEC_PROFILE``;
5. built-in defaults (fused on, sanitizer off, bounds checking off,
   ``gpusim`` backend, ``P100`` device).

``None`` always means "unset — inherit from the next layer down", so a
config object may pin one field and leave the rest floating.

Tracing (``REPRO_TRACE``, :mod:`repro.obs`) is deliberately *not* an
execution field: it resolves through the same precedence shape
(``trace=`` kwarg > ``tracing()`` context > env) but never participates
in mode resolution, plan-cache keys or kernel arguments — enabling it
cannot change what executes.

Environment variables (lowest-precedence layer, kept from the earlier
env-var-only plumbing):

===================  ==========================  =======================
field                variable                    default
===================  ==========================  =======================
``fused``            ``REPRO_GPUSIM_FUSED``      on
``sanitize``         ``REPRO_GPUSIM_SANITIZE``   off
``bounds_check``     ``REPRO_GPUSIM_BOUNDS_CHECK``  off
``backend``          ``REPRO_EXEC_BACKEND``      ``gpusim``
``device``           ``REPRO_EXEC_DEVICE``       ``P100``
``autotune``         ``REPRO_PLAN_AUTOTUNE``     off
(profile)            ``REPRO_EXEC_PROFILE``      — (see :data:`PROFILES`)
===================  ==========================  =======================

Boolean variables accept ``"0"``, ``"false"``, ``"no"``, ``"off"`` and
``""`` (case-insensitive, surrounding whitespace ignored) as false;
anything else is true.

This module deliberately imports nothing from the rest of the package so
that every layer — including :mod:`repro.gpusim` — can depend on it
without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

__all__ = [
    "ExecutionConfig",
    "PROFILES",
    "ENV_VARS",
    "env_flag",
    "execution",
    "get_default_config",
    "set_default_config",
    "resolve_execution",
    "requested_backend",
]

_FALSY = {"0", "false", "no", "off", ""}


def env_flag(name: str, default: bool) -> bool:
    """Read a boolean flag from the environment.

    ``"0"``, ``"false"``, ``"no"``, ``"off"`` and ``""`` (case-insensitive,
    whitespace-stripped) disable; anything else enables; an unset variable
    yields ``default``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


@dataclass(frozen=True)
class ExecutionConfig:
    """One bundle of execution-mode knobs; ``None`` fields are unset.

    Frozen so configs can key caches and be shared freely; derive variants
    with :meth:`with_fields` (or ``dataclasses.replace``).
    """

    #: Fused register-bank fast path in the SAT kernels (bit-identical to
    #: the legacy per-register path in data, counters and timings).
    fused: Optional[bool] = None
    #: Full kernel sanitizer (:mod:`repro.gpusim.sanitize`).
    sanitize: Optional[bool] = None
    #: Global-memory bounds checking debug mode.
    bounds_check: Optional[bool] = None
    #: Execution backend name from the :mod:`repro.exec.registry`
    #: (``"gpusim"`` — the simulator —, ``"host"`` — pure NumPy pass
    #: semantics —, or ``"compiled"`` — tape-compiled plan replay).
    backend: Optional[str] = None
    #: Default simulated device name (any :data:`repro.gpusim.device.
    #: DEVICES` entry — ``"P100"``, ``"V100"``, ``"A100"``...).
    device: Optional[str] = None
    #: Route calls with no explicit algorithm through the model-driven
    #: :class:`~repro.plan.Planner` (``algorithm="auto"``).  Off by
    #: default; the ``autotuned`` profile turns it on.
    autotune: Optional[bool] = None

    def with_fields(self, **changes) -> "ExecutionConfig":
        """A copy with ``changes`` applied (``None`` clears a field)."""
        return replace(self, **changes)

    def merged_over(self, other: "ExecutionConfig") -> "ExecutionConfig":
        """Layer ``self`` over ``other``: set fields of ``self`` win."""
        out = {}
        for f in fields(self):
            mine = getattr(self, f.name)
            out[f.name] = mine if mine is not None else getattr(other, f.name)
        return ExecutionConfig(**out)

    @property
    def is_fully_resolved(self) -> bool:
        return all(getattr(self, f.name) is not None for f in fields(self))

    def compat_key(self) -> Tuple[Tuple[str, object], ...]:
        """Hashable compatibility key for request coalescing.

        Two requests may share a batched launch only if every resolved
        execution field matches — mixing, say, a sanitized request into a
        fused batch would silently drop its instrumentation.  The key is
        the sorted ``(field, value)`` tuple of a **fully resolved** config
        (resolve first with :func:`resolve_execution`, which also folds in
        the submitting thread's ambient contexts and environment);
        requiring resolution makes two *equivalent spellings* of the same
        modes — env var vs. profile vs. kwarg — coalesce into one batch.
        Unresolved configs raise ``ValueError``: ``None`` means "inherit",
        and what is inherited can differ between submitter and worker
        threads.
        """
        if not self.is_fully_resolved:
            unset = [f.name for f in fields(self)
                     if getattr(self, f.name) is None]
            raise ValueError(
                f"compat_key requires a fully resolved config; unset fields: "
                f"{unset} (pass the result of resolve_execution())"
            )
        # ``autotune`` is deliberately excluded: it selects *which*
        # concrete configuration runs, and callers fold the planner's
        # decision (algorithm, backend, opts) into the key before
        # coalescing — so an autotuned request batches with an explicit
        # request that spells the same decision by hand.
        return tuple(sorted(
            (f.name, getattr(self, f.name)) for f in fields(self)
            if f.name != "autotune"
        ))


#: Named execution profiles, selectable with ``REPRO_EXEC_PROFILE=<name>``
#: (or ``resolve_execution("<name>")``).  CI runs the test suite once per
#: profile instead of hand-wiring raw env vars per job.
PROFILES: Dict[str, ExecutionConfig] = {
    "default": ExecutionConfig(),
    "legacy": ExecutionConfig(fused=False),
    "sanitized": ExecutionConfig(sanitize=True),
    "compiled": ExecutionConfig(backend="compiled"),
    "autotuned": ExecutionConfig(autotune=True),
}

#: Per-field environment variables (the lowest-precedence explicit layer).
ENV_VARS: Dict[str, str] = {
    "fused": "REPRO_GPUSIM_FUSED",
    "sanitize": "REPRO_GPUSIM_SANITIZE",
    "bounds_check": "REPRO_GPUSIM_BOUNDS_CHECK",
    "backend": "REPRO_EXEC_BACKEND",
    "device": "REPRO_EXEC_DEVICE",
    "autotune": "REPRO_PLAN_AUTOTUNE",
}

_BOOL_FIELDS = ("fused", "sanitize", "bounds_check", "autotune")

#: Built-in defaults — the behaviour with nothing configured anywhere.
_BUILTIN = ExecutionConfig(
    fused=True, sanitize=False, bounds_check=False, backend="gpusim",
    device="P100", autotune=False,
)

ConfigLike = Union["ExecutionConfig", Mapping, str, None]

#: Innermost-last stack of :func:`execution` context configs plus the
#: installed process default at the bottom.
_context_stack: ContextVar[Tuple[ExecutionConfig, ...]] = ContextVar(
    "repro_exec_context_stack", default=()
)
_default_config = ExecutionConfig()


def _coerce(config: ConfigLike, fields_: Optional[dict] = None) -> ExecutionConfig:
    """Accept an ExecutionConfig, a mapping, or a profile name."""
    if config is None:
        cfg = ExecutionConfig()
    elif isinstance(config, ExecutionConfig):
        cfg = config
    elif isinstance(config, str):
        try:
            cfg = PROFILES[config]
        except KeyError:
            raise ValueError(
                f"unknown execution profile {config!r}; available: "
                f"{sorted(PROFILES)}"
            ) from None
    elif isinstance(config, Mapping):
        cfg = ExecutionConfig(**config)
    else:
        raise TypeError(
            f"config must be an ExecutionConfig, mapping or profile name, "
            f"got {type(config).__name__}"
        )
    if fields_:
        cfg = ExecutionConfig(**fields_).merged_over(cfg)
    return cfg


def get_default_config() -> ExecutionConfig:
    """The installed process-wide default config (possibly all-unset)."""
    return _default_config


def set_default_config(config: ConfigLike = None, **fields_) -> ExecutionConfig:
    """Install the process-wide default config; returns the previous one."""
    global _default_config
    previous = _default_config
    _default_config = _coerce(config, fields_)
    return previous


@contextmanager
def execution(config: ConfigLike = None, **fields_) -> Iterator[ExecutionConfig]:
    """Scope an :class:`ExecutionConfig` over a ``with`` block.

    >>> with execution(sanitize=True):
    ...     run = sat(img)          # doctest: +SKIP

    Contexts nest; the innermost set field wins.  Accepts the same
    spellings as ``config=`` call parameters: an :class:`ExecutionConfig`,
    a mapping, or a profile name from :data:`PROFILES`.
    """
    cfg = _coerce(config, fields_)
    token = _context_stack.set(_context_stack.get() + (cfg,))
    try:
        yield cfg
    finally:
        _context_stack.reset(token)


def _env_value(field: str):
    raw = os.environ.get(ENV_VARS[field])
    if raw is None:
        return None
    if field in _BOOL_FIELDS:
        return raw.strip().lower() not in _FALSY
    return raw.strip() or None


def _profile_config() -> Optional[ExecutionConfig]:
    name = os.environ.get("REPRO_EXEC_PROFILE")
    if name is None or not name.strip():
        return None
    try:
        return PROFILES[name.strip()]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_EXEC_PROFILE {name.strip()!r}; available: "
            f"{sorted(PROFILES)}"
        ) from None


def requested_backend(config: ConfigLike = None,
                      backend: Optional[str] = None) -> Optional[str]:
    """The backend explicitly requested *at the call site*, or ``None``.

    Only the ``backend=`` keyword and the per-call ``config`` count as
    explicit; contexts, the installed default, environment variables and
    profiles are floating preferences.  Callers that cannot honour a
    backend (spec-less baseline algorithms) reject explicit requests but
    quietly ignore floating ones — a profile like ``compiled`` must not
    make the CPU baselines unusable.
    """
    if backend is not None:
        return backend
    if config is not None:
        return _coerce(config).backend
    return None


def resolve_execution(config: ConfigLike = None, **overrides) -> ExecutionConfig:
    """Resolve every field to a concrete value through the layer stack.

    ``overrides`` are the explicit call-site keywords (highest precedence;
    ``None`` means "not given"), ``config`` is the per-call config object
    (or mapping / profile name).  Below those sit the :func:`execution`
    contexts (innermost first), the :func:`set_default_config` default,
    the per-field environment variables, the ``REPRO_EXEC_PROFILE``
    profile, and finally the built-in defaults — so the returned config
    has no ``None`` fields.
    """
    unknown = set(overrides) - {f.name for f in fields(ExecutionConfig)}
    if unknown:
        raise TypeError(f"unknown execution fields: {sorted(unknown)}")
    layers = [ExecutionConfig(**{k: v for k, v in overrides.items() if v is not None})]
    if config is not None:
        layers.append(_coerce(config))
    layers.extend(reversed(_context_stack.get()))
    layers.append(_default_config)

    out = {}
    profile = _sentinel = object()
    for f in (f.name for f in fields(ExecutionConfig)):
        value = None
        for layer in layers:
            value = getattr(layer, f)
            if value is not None:
                break
        if value is None:
            value = _env_value(f)
        if value is None:
            if profile is _sentinel:
                profile = _profile_config()
            if profile is not None:
                value = getattr(profile, f)
        if value is None:
            value = getattr(_BUILTIN, f)
        out[f] = value
    return ExecutionConfig(**out)
