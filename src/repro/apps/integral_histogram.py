"""Integral histograms (Poostchi et al. [34], [38] in Sec. II).

A per-bin stack of SATs: bin ``b``'s table integrates the indicator image
``image == b`` (or a range membership), after which the histogram of any
rectangle costs four lookups per bin.  Used by real-time video analytics
(HOG-style descriptors, tracking) — and a natural stress test for the SAT
primitive since it computes ``n_bins`` SATs back to back.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..sat.api import sat as sat_api
from ..sat.box_filter import rect_sums

__all__ = ["IntegralHistogram", "integral_histogram"]


class IntegralHistogram:
    """Stack of per-bin SATs with constant-time region histograms."""

    def __init__(self, tables: np.ndarray, edges: np.ndarray):
        #: ``(n_bins, H, W)`` integral tables.
        self.tables = tables
        #: Bin edges, length ``n_bins + 1``.
        self.edges = edges

    @property
    def n_bins(self) -> int:
        return self.tables.shape[0]

    def region_histogram(self, y0: int, x0: int, y1: int, x1: int) -> np.ndarray:
        """Histogram of the inclusive rectangle, one rect-sum per bin."""
        return np.array([
            rect_sums(self.tables[b], np.array(y0), np.array(x0),
                      np.array(y1), np.array(x1))
            for b in range(self.n_bins)
        ], dtype=np.int64)


def integral_histogram(
    image: np.ndarray,
    n_bins: int = 8,
    value_range: Tuple[int, int] = (0, 256),
    algorithm: str = "brlt_scanrow",
    device: str = "P100",
) -> IntegralHistogram:
    """Build an integral histogram with one GPU SAT per bin."""
    edges = np.linspace(value_range[0], value_range[1], n_bins + 1)
    bins = np.digitize(image, edges[1:-1]).astype(np.uint8)
    tables = []
    for b in range(n_bins):
        indicator = (bins == b).astype(np.uint8)
        run = sat_api(indicator, pair="8u32s", algorithm=algorithm, device=device)
        tables.append(run.output)
    return IntegralHistogram(np.stack(tables), edges)
