"""Lewis fast normalised cross-correlation ([15] in the paper's Sec. I).

NCC template matching normally costs a window-sum per candidate position;
Lewis's trick computes the denominator's local sums and local sums of
squares from two SATs (one over the image, one over its square), leaving
only the numerator cross-correlation.  This module implements the full
pipeline, with the numerator done directly (FFT-free) — small templates —
so the result is exactly comparable to a brute-force NCC.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..sat.api import sat as sat_api
from ..sat.box_filter import rect_sums

__all__ = ["match_template", "match_template_reference", "best_match"]


def _window_sums(table: np.ndarray, th: int, tw: int,
                 h: int, w: int) -> np.ndarray:
    oy = np.arange(0, h - th + 1)
    ox = np.arange(0, w - tw + 1)
    gy, gx = np.meshgrid(oy, ox, indexing="ij")
    return rect_sums(table, gy, gx, gy + th - 1, gx + tw - 1)


def match_template(
    image: np.ndarray,
    template: np.ndarray,
    algorithm: str = "brlt_scanrow",
    device: str = "P100",
) -> np.ndarray:
    """NCC response map, SAT-accelerated denominators.

    Returns an ``(H-th+1, W-tw+1)`` map in ``[-1, 1]``.
    """
    img = image.astype(np.float64)
    tpl = template.astype(np.float64)
    th, tw = tpl.shape
    h, w = img.shape
    n = th * tw

    # Two GPU SATs: image and image squared (Lewis's running sums).
    sat_i = sat_api(img, pair="64f64f", algorithm=algorithm, device=device).output
    sat_i2 = sat_api(img * img, pair="64f64f", algorithm=algorithm, device=device).output

    sums = _window_sums(sat_i, th, tw, h, w)
    sums2 = _window_sums(sat_i2, th, tw, h, w)
    win_var = sums2 - sums * sums / n

    tpl_zero = tpl - tpl.mean()
    tpl_norm = np.sqrt((tpl_zero ** 2).sum())

    # Numerator: direct correlation with the zero-mean template.
    from scipy.signal import correlate2d  # local import: scipy optional path

    numer = correlate2d(img, tpl_zero, mode="valid")

    denom = np.sqrt(np.maximum(win_var, 0)) * tpl_norm
    with np.errstate(divide="ignore", invalid="ignore"):
        ncc = np.where(denom > 1e-12, numer / denom, 0.0)
    return ncc


def match_template_reference(image: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Brute-force NCC for verification (small inputs only)."""
    img = image.astype(np.float64)
    tpl = template.astype(np.float64)
    th, tw = tpl.shape
    h, w = img.shape
    tpl_zero = tpl - tpl.mean()
    tpl_norm = np.sqrt((tpl_zero ** 2).sum())
    out = np.zeros((h - th + 1, w - tw + 1))
    for y in range(out.shape[0]):
        for x in range(out.shape[1]):
            win = img[y:y + th, x:x + tw]
            wz = win - win.mean()
            denom = np.sqrt((wz ** 2).sum()) * tpl_norm
            out[y, x] = (win * tpl_zero).sum() / denom if denom > 1e-12 else 0.0
    return out


def best_match(response: np.ndarray) -> Tuple[int, int]:
    """Location of the best response (y, x)."""
    return tuple(int(v) for v in np.unravel_index(np.argmax(response), response.shape))
