"""Box blur / general box filtering (Crow [1], the original SAT use).

A blur with any window size costs four SAT lookups per pixel regardless
of the radius — the constant-time property that motivated summed-area
tables in 1984.  ``box_blur`` runs the full pipeline: SAT on the simulated
GPU, then the four-corner gather on the host.
"""

from __future__ import annotations

import numpy as np

from ..sat.api import sat as sat_api
from ..sat.box_filter import box_filter

__all__ = ["box_blur", "box_blur_reference"]


def box_blur(
    image: np.ndarray,
    radius: int,
    algorithm: str = "brlt_scanrow",
    device: str = "P100",
) -> np.ndarray:
    """Blur ``image`` with a ``(2r+1)^2`` box window via a GPU SAT.

    Accumulates in ``64f`` so large windows cannot overflow.
    """
    run = sat_api(image, pair=(image.dtype, "64f"), algorithm=algorithm, device=device)
    return box_filter(run.output, radius).astype(np.float64)


def box_blur_reference(image: np.ndarray, radius: int) -> np.ndarray:
    """Brute-force windowed mean (edge-clamped) for verification."""
    h, w = image.shape
    out = np.zeros((h, w), dtype=np.float64)
    img = image.astype(np.float64)
    for y in range(h):
        y0, y1 = max(y - radius, 0), min(y + radius, h - 1)
        for x in range(w):
            x0, x1 = max(x - radius, 0), min(x + radius, w - 1)
            out[y, x] = img[y0:y1 + 1, x0:x1 + 1].mean()
    return out
