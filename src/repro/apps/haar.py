"""Viola-Jones Haar-like feature evaluation ([2] in the paper's Sec. I).

The real-time face-detection cascade rests on evaluating rectangular
contrast features at every window position in constant time from an
integral image.  This module provides the standard two-, three- and
four-rectangle features and a dense sliding-window evaluator — the
compute pattern whose throughput SAT acceleration unlocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..sat.api import sat as sat_api
from ..sat.box_filter import rect_sums

__all__ = ["HaarFeature", "STANDARD_FEATURES", "evaluate_feature", "sliding_window_features"]


@dataclass(frozen=True)
class HaarFeature:
    """A Haar-like feature: weighted rectangles in unit window coordinates.

    Each rectangle is ``(y0, x0, y1, x1, weight)`` with fractional
    coordinates relative to the detection window; the feature value is the
    weighted sum of pixel sums.
    """

    name: str
    rects: Tuple[Tuple[float, float, float, float, float], ...]


#: The canonical Viola-Jones prototypes.
STANDARD_FEATURES: List[HaarFeature] = [
    HaarFeature("edge_horizontal", (
        (0.0, 0.0, 0.5, 1.0, +1.0),
        (0.5, 0.0, 1.0, 1.0, -1.0),
    )),
    HaarFeature("edge_vertical", (
        (0.0, 0.0, 1.0, 0.5, +1.0),
        (0.0, 0.5, 1.0, 1.0, -1.0),
    )),
    HaarFeature("line_horizontal", (
        (0.0, 0.0, 1.0 / 3, 1.0, +1.0),
        (1.0 / 3, 0.0, 2.0 / 3, 1.0, -2.0),
        (2.0 / 3, 0.0, 1.0, 1.0, +1.0),
    )),
    HaarFeature("line_vertical", (
        (0.0, 0.0, 1.0, 1.0 / 3, +1.0),
        (0.0, 1.0 / 3, 1.0, 2.0 / 3, -2.0),
        (0.0, 2.0 / 3, 1.0, 1.0, +1.0),
    )),
    HaarFeature("four_rectangle", (
        (0.0, 0.0, 0.5, 0.5, +1.0),
        (0.0, 0.5, 0.5, 1.0, -1.0),
        (0.5, 0.0, 1.0, 0.5, -1.0),
        (0.5, 0.5, 1.0, 1.0, +1.0),
    )),
]


def _rect_to_pixels(rect, wy: int, wx: int, win: int):
    y0f, x0f, y1f, x1f, wgt = rect
    y0 = wy + int(round(y0f * win))
    x0 = wx + int(round(x0f * win))
    y1 = wy + int(round(y1f * win)) - 1
    x1 = wx + int(round(x1f * win)) - 1
    return y0, x0, max(y1, y0), max(x1, x0), wgt


def evaluate_feature(table: np.ndarray, feature: HaarFeature,
                     wy: int, wx: int, win: int) -> float:
    """Evaluate one feature at window origin ``(wy, wx)`` of side ``win``."""
    total = 0.0
    for rect in feature.rects:
        y0, x0, y1, x1, wgt = _rect_to_pixels(rect, wy, wx, win)
        total += wgt * float(rect_sums(table, np.array(y0), np.array(x0),
                                       np.array(y1), np.array(x1)))
    return total


def sliding_window_features(
    image: np.ndarray,
    features: Sequence[HaarFeature] = tuple(STANDARD_FEATURES),
    window: int = 24,
    stride: int = 4,
    algorithm: str = "brlt_scanrow",
    device: str = "P100",
) -> np.ndarray:
    """Dense feature map: shape ``(n_windows_y, n_windows_x, n_features)``.

    Every value costs a handful of SAT lookups — the Viola-Jones inner
    loop.  The SAT itself is computed on the simulated GPU.
    """
    run = sat_api(image, pair="8u64f", algorithm=algorithm, device=device)
    table = run.output
    h, w = image.shape
    oys = np.arange(0, h - window + 1, stride)
    oxs = np.arange(0, w - window + 1, stride)
    out = np.zeros((len(oys), len(oxs), len(features)))
    gy, gx = np.meshgrid(oys, oxs, indexing="ij")
    for fi, feat in enumerate(features):
        acc = np.zeros_like(gy, dtype=np.float64)
        for rect in feat.rects:
            y0f, x0f, y1f, x1f, wgt = rect
            y0 = gy + int(round(y0f * window))
            x0 = gx + int(round(x0f * window))
            y1 = gy + int(round(y1f * window)) - 1
            x1 = gx + int(round(x1f * window)) - 1
            acc += wgt * rect_sums(table, y0, x0, np.maximum(y1, y0),
                                   np.maximum(x1, x0))
        out[:, :, fi] = acc
    return out
