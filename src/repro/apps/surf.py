"""SURF-style box-filter Hessian responses (Bay et al. [5], paper Sec. I).

SURF's interest-point detector approximates the Hessian's second-order
Gaussian derivatives with weighted box filters evaluated on an integral
image, so every filter size costs the same handful of lookups.  This
module implements the standard 9x9-lobed ``D_xx``, ``D_yy`` and ``D_xy``
approximations at arbitrary scale and the determinant-of-Hessian response
map used for detection.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..sat.api import sat as sat_api
from ..sat.box_filter import rect_sums

__all__ = ["hessian_responses", "det_hessian", "find_interest_points"]


def _clipped_rect_sums(table, y0, x0, y1, x1):
    h, w = table.shape
    y0c = np.clip(y0, 0, h - 1)
    y1c = np.clip(y1, 0, h - 1)
    x0c = np.clip(x0, 0, w - 1)
    x1c = np.clip(x1, 0, w - 1)
    valid = (y0 <= y1) & (x0 <= x1)
    return np.where(valid, rect_sums(table, y0c, x0c,
                                     np.maximum(y1c, y0c),
                                     np.maximum(x1c, x0c)), 0.0)


def hessian_responses(
    table: np.ndarray, lobe: int = 3
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(D_xx, D_yy, D_xy)`` box-filter responses at every pixel.

    ``lobe`` is SURF's ``l`` (3 for the 9x9 base filter); the filter side
    is ``3 * lobe``.  Border pixels where the filter does not fit return 0.
    """
    h, w = table.shape
    size = 3 * lobe
    half = size // 2
    ys, xs = np.mgrid[0:h, 0:w]

    # D_yy: three stacked horizontal lobes (white, -2x black, white);
    # the middle lobe is exactly ``lobe`` rows tall, so the filter is
    # zero-sum: area(full) = 3*lobe * (2*lobe-1) = 3 * area(mid).
    full = _clipped_rect_sums(table, ys - half, xs - lobe + 1,
                              ys + half, xs + lobe - 1)
    mid = _clipped_rect_sums(table, ys - lobe // 2, xs - lobe + 1,
                             ys + (lobe - 1) // 2, xs + lobe - 1)
    d_yy = full - 3.0 * mid

    # D_xx is the transpose pattern.
    full = _clipped_rect_sums(table, ys - lobe + 1, xs - half,
                              ys + lobe - 1, xs + half)
    mid = _clipped_rect_sums(table, ys - lobe + 1, xs - lobe // 2,
                             ys + lobe - 1, xs + (lobe - 1) // 2)
    d_xx = full - 3.0 * mid

    # D_xy: four diagonal lobes (+ - / - +).
    pp = _clipped_rect_sums(table, ys + 1, xs + 1, ys + lobe, xs + lobe)
    mm = _clipped_rect_sums(table, ys - lobe, xs - lobe, ys - 1, xs - 1)
    pm = _clipped_rect_sums(table, ys + 1, xs - lobe, ys + lobe, xs - 1)
    mp = _clipped_rect_sums(table, ys - lobe, xs + 1, ys - 1, xs + lobe)
    d_xy = pp + mm - pm - mp

    return d_xx, d_yy, d_xy


def det_hessian(
    image: np.ndarray,
    lobe: int = 3,
    algorithm: str = "brlt_scanrow",
    device: str = "P100",
) -> np.ndarray:
    """SURF's determinant-of-Hessian response map from one GPU SAT.

    ``det = D_xx * D_yy - (0.9 * D_xy)^2``, normalised by the filter area.
    """
    run = sat_api(image, pair=(image.dtype, "64f"), algorithm=algorithm,
                  device=device)
    d_xx, d_yy, d_xy = hessian_responses(run.output, lobe)
    norm = (3.0 * lobe) ** 2
    return (d_xx / norm) * (d_yy / norm) - (0.9 * d_xy / norm) ** 2


def find_interest_points(
    response: np.ndarray, threshold: float, border: int = 8
) -> List[Tuple[int, int]]:
    """Local maxima of the response above ``threshold`` (3x3 NMS)."""
    h, w = response.shape
    points: List[Tuple[int, int]] = []
    for y in range(max(border, 1), min(h - border, h - 1)):
        for x in range(max(border, 1), min(w - border, w - 1)):
            v = response[y, x]
            if v > threshold and v == response[y - 1:y + 2, x - 1:x + 2].max():
                points.append((y, x))
    return points
