"""Application workloads built on the SAT primitive (paper Sec. I)."""

from .adaptive_threshold import adaptive_threshold, adaptive_threshold_reference
from .box_blur import box_blur, box_blur_reference
from .haar import HaarFeature, STANDARD_FEATURES, evaluate_feature, sliding_window_features
from .integral_histogram import IntegralHistogram, integral_histogram
from .pooling import average_pool, average_pool_reference, box_convolve
from .surf import det_hessian, find_interest_points, hessian_responses
from .template_matching import best_match, match_template, match_template_reference

__all__ = [
    "adaptive_threshold",
    "adaptive_threshold_reference",
    "box_blur",
    "box_blur_reference",
    "HaarFeature",
    "STANDARD_FEATURES",
    "evaluate_feature",
    "sliding_window_features",
    "IntegralHistogram",
    "integral_histogram",
    "average_pool",
    "average_pool_reference",
    "box_convolve",
    "best_match",
    "match_template",
    "match_template_reference",
    "det_hessian",
    "find_interest_points",
    "hessian_responses",
]
