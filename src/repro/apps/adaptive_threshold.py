"""Bradley-Roth adaptive thresholding ([7] in the paper's Sec. I).

Binarises unevenly lit documents: a pixel is foreground if it is more than
``t`` percent darker than the mean of its surrounding ``s x s`` window —
and the windowed means come from one SAT, so the whole algorithm is two
scans plus a constant-time test per pixel.
"""

from __future__ import annotations

import numpy as np

from ..sat.api import sat as sat_api
from ..sat.box_filter import rect_sums

__all__ = ["adaptive_threshold", "adaptive_threshold_reference"]


def adaptive_threshold(
    image: np.ndarray,
    window: int = 15,
    t: float = 0.15,
    algorithm: str = "brlt_scanrow",
    device: str = "P100",
) -> np.ndarray:
    """Bradley-Roth binarisation: True = foreground (dark ink).

    Parameters
    ----------
    image:
        8-bit grayscale page.
    window:
        Side of the local-mean window (odd).
    t:
        Relative darkness threshold (0.15 in the original paper).
    """
    if image.dtype != np.uint8:
        raise TypeError("adaptive_threshold expects an 8-bit image")
    run = sat_api(image, pair="8u64f", algorithm=algorithm, device=device)
    table = run.output
    h, w = image.shape
    r = window // 2
    ys, xs = np.mgrid[0:h, 0:w]
    y0 = np.maximum(ys - r, 0)
    y1 = np.minimum(ys + r, h - 1)
    x0 = np.maximum(xs - r, 0)
    x1 = np.minimum(xs + r, w - 1)
    sums = rect_sums(table, y0, x0, y1, x1)
    area = (y1 - y0 + 1) * (x1 - x0 + 1)
    return image.astype(np.float64) * area < sums * (1.0 - t)


def adaptive_threshold_reference(image: np.ndarray, window: int = 15,
                                 t: float = 0.15) -> np.ndarray:
    """Brute-force windowed-mean version for verification."""
    h, w = image.shape
    r = window // 2
    img = image.astype(np.float64)
    out = np.zeros((h, w), dtype=bool)
    for y in range(h):
        y0, y1 = max(y - r, 0), min(y + r, h - 1)
        for x in range(w):
            x0, x1 = max(x - r, 0), min(x + r, w - 1)
            mean = img[y0:y1 + 1, x0:x1 + 1].mean()
            out[y, x] = img[y, x] < mean * (1.0 - t)
    return out
