"""SAT-based average pooling / box convolution (Kasagi et al. [14]).

The deep-learning motivation from the paper's introduction: a pooling (or
uniform-kernel convolution) layer over an activation map reduces to
rectangle sums on one SAT, so arbitrary kernel sizes and strides cost the
same — the "unified layer performing convolution and average pooling".
Activations are ``32f``, the pair the paper singles out in Sec. VI-C3.
"""

from __future__ import annotations

import numpy as np

from ..sat.api import sat as sat_api
from ..sat.box_filter import rect_sums

__all__ = ["average_pool", "average_pool_reference", "box_convolve"]


def average_pool(
    activations: np.ndarray,
    kernel: int,
    stride: int = None,
    algorithm: str = "brlt_scanrow",
    device: str = "P100",
) -> np.ndarray:
    """Average-pool a 2-D activation map through one SAT.

    ``stride`` defaults to ``kernel`` (non-overlapping pooling).
    """
    stride = stride or kernel
    act = activations.astype(np.float32)
    table = sat_api(act, pair=("32f", "64f"), algorithm=algorithm, device=device).output
    h, w = act.shape
    oy = np.arange(0, h - kernel + 1, stride)
    ox = np.arange(0, w - kernel + 1, stride)
    gy, gx = np.meshgrid(oy, ox, indexing="ij")
    sums = rect_sums(table, gy, gx, gy + kernel - 1, gx + kernel - 1)
    return (sums / (kernel * kernel)).astype(np.float32)


def average_pool_reference(activations: np.ndarray, kernel: int,
                           stride: int = None) -> np.ndarray:
    """Loop-based pooling for verification."""
    stride = stride or kernel
    act = activations.astype(np.float64)
    h, w = act.shape
    oy = range(0, h - kernel + 1, stride)
    ox = range(0, w - kernel + 1, stride)
    out = np.zeros((len(oy), len(ox)))
    for i, y in enumerate(oy):
        for j, x in enumerate(ox):
            out[i, j] = act[y:y + kernel, x:x + kernel].mean()
    return out.astype(np.float32)


def box_convolve(
    activations: np.ndarray,
    kernel: int,
    weight: float = 1.0,
    algorithm: str = "brlt_scanrow",
    device: str = "P100",
) -> np.ndarray:
    """'Valid' convolution with a uniform ``kernel x kernel`` filter.

    Equivalent to ``weight * kernel^2 * average_pool(stride=1)`` — the
    building block Kasagi et al. fuse into their unified layer.
    """
    pooled = average_pool(activations, kernel, stride=1,
                          algorithm=algorithm, device=device)
    return pooled * (weight * kernel * kernel)
