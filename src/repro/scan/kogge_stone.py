"""Alg. 3 — Kogge-Stone warp scan via ``shfl_up``.

The widely adopted shuffle-based parallel warp scan: ``log2 N`` stages; at
stage ``i`` every lane with ``laneId >= i`` adds the value ``i`` lanes
below.  For a 32-wide warp that is ``31+30+28+24+16 = 129`` additions and
5 shuffles per scanned row (Sec. V-B2).

(The paper's listing guards with ``laneId > i``; the classic algorithm —
and the arithmetic in Sec. V-B2, which counts ``N - 2^k`` active lanes per
stage — uses ``>=``.  We implement ``>=``; tests check the scan against
``np.cumsum`` and the add count against the Sec.-V formula.)
"""

from __future__ import annotations

from ..gpusim.block import KernelContext
from ..gpusim.regfile import RegArray, RegBank

__all__ = ["kogge_stone_scan", "kogge_stone_scan_bank"]


def kogge_stone_scan(ctx: KernelContext, data: RegArray, width: int = 32) -> RegArray:
    """Inclusive Kogge-Stone scan of one register across the warp's lanes."""
    lane = ctx.lane_id() % width
    i = 1
    while i < width:
        val = ctx.shfl_up(data, i, width)
        data = data.add_where(lane >= i, val)
        i *= 2
    return data


def kogge_stone_scan_bank(ctx: KernelContext, bank: RegBank, width: int = 32) -> RegBank:
    """Fused Kogge-Stone scan of every register in a bank along the lanes.

    One shuffle + one predicated add per stage cover all ``n_regs``
    registers; the counted instructions (and the per-stage active-lane
    totals of Sec. V-B2) are exactly ``n_regs`` times the single-register
    scan, matching a per-register loop bit for bit.
    """
    lane = ctx.lane_id() % width
    i = 1
    while i < width:
        val = ctx.shfl_up_bank(bank, i, width)
        bank = bank.add_where(lane >= i, val)
        i *= 2
    return bank
