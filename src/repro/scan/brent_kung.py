"""Brent-Kung warp scan (Sec. III-C2 reference pattern [48], [49]).

The work-efficient tree scan: an up-sweep builds power-of-two partial
sums, an inclusive down-sweep distributes them.  ``2 log2 N - 1`` stages
and ``2N - 2 - log2 N`` additions — fewer adds than Kogge-Stone but twice
the depth, which is why shuffle-latency-bound warp scans usually prefer
Kogge-Stone.  Included as one of the CUDA-optimised scan patterns of
Dieguez et al. [44] that the paper positions against.

Lane predicates are pre-computed index masks (the hardware would fold
them into the instruction predicate); additions are counted per active
lane via ``add_where``.
"""

from __future__ import annotations

from ..gpusim.block import KernelContext
from ..gpusim.regfile import RegArray

__all__ = ["brent_kung_scan"]


def brent_kung_scan(ctx: KernelContext, data: RegArray, width: int = 32) -> RegArray:
    """Inclusive Brent-Kung scan of one register across the warp's lanes."""
    lane = ctx.lane_id() % width

    # Up-sweep: lanes k*2d-1 accumulate the partial sum d lanes below.
    d = 1
    while d < width:
        val = ctx.shfl_up(data, d, width)
        data = data.add_where((lane & (2 * d - 1)) == (2 * d - 1), val)
        d *= 2

    # Inclusive down-sweep: lanes k*2d + d - 1 (k >= 1) pick up the tree
    # sum ending d lanes below.
    d = width // 4
    while d >= 1:
        val = ctx.shfl_up(data, d, width)
        data = data.add_where(((lane & (2 * d - 1)) == (d - 1)) & (lane >= d), val)
        d //= 2
    return data
