"""Alg. 4 — Ladner-Fischer (Sklansky) warp scan via segmented ``shfl``.

The minimum-depth scan: ``log2 N`` stages and ``N/2`` additions per stage
(``16 * 5 = 80`` adds for a 32-wide warp — the paper's
``N_LF_add = (16+16+16+16+16) * 32`` counts 32 rows).  Each stage ``i``
broadcasts lane ``i-1`` of every ``2i``-wide segment to the segment's
upper half, guarded by the boolean test ``(laneId & (2i - 1)) >= i`` —
the extra AND traffic Eq. ``N_LF_and`` accounts for.

The paper is the first to apply LF-scan to SAT; Sec. VI-C1 finds it ties
Kogge-Stone end-to-end because the workload is memory-bound, which the
ablation benchmark reproduces.
"""

from __future__ import annotations

from ..gpusim.block import KernelContext
from ..gpusim.regfile import RegArray

__all__ = ["ladner_fischer_scan"]


def ladner_fischer_scan(ctx: KernelContext, data: RegArray, width: int = 32) -> RegArray:
    """Inclusive LF-scan of one register across the warp's lanes."""
    lane_reg = ctx.from_array(ctx.lane_id() % width)
    i = 1
    while i < width:
        # Broadcast the top of each segment's lower half to the whole segment.
        val = ctx.shfl(data, i - 1, 2 * i)
        # Boolean guard from Alg. 4 line 4 (counted on the AND pipeline).
        in_upper_half = (lane_reg & (2 * i - 1)) >= i
        data = data.add_where(in_upper_half, val)
        i *= 2
    return data
