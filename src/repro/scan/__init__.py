"""Warp-level scan (all-prefix-sum) algorithm library (Sec. III-C).

``WARP_SCANS`` registers every parallel warp-scan pattern; the SAT drivers
select one by name (``"kogge_stone"`` is the paper's default, Sec. VI-B).
"""

from typing import Callable, Dict

from .brent_kung import brent_kung_scan
from .han_carlson import han_carlson_scan
from .kogge_stone import kogge_stone_scan, kogge_stone_scan_bank
from .ladner_fischer import ladner_fischer_scan
from .serial import serial_scan_bank, serial_scan_inplace, serial_scan_registers
from .reference import (
    brent_kung_adds,
    exclusive_scan,
    han_carlson_adds,
    inclusive_scan,
    kogge_stone_adds,
    kogge_stone_stages,
    ladner_fischer_adds,
    ladner_fischer_stages,
    serial_scan_adds,
    serial_scan_stages,
)

#: Parallel warp-scan registry, keyed by the names the benchmarks use.
WARP_SCANS: Dict[str, Callable] = {
    "kogge_stone": kogge_stone_scan,
    "ladner_fischer": ladner_fischer_scan,
    "brent_kung": brent_kung_scan,
    "han_carlson": han_carlson_scan,
}

#: Fused register-bank variants (one dispatch scans all 32 registers).
#: Scans without a bank variant fall back to a per-register loop in the
#: fused kernels — counters are identical either way.
WARP_SCANS_BANK: Dict[str, Callable] = {
    "kogge_stone": kogge_stone_scan_bank,
}

__all__ = [
    "WARP_SCANS",
    "WARP_SCANS_BANK",
    "kogge_stone_scan_bank",
    "serial_scan_bank",
    "brent_kung_scan",
    "han_carlson_scan",
    "kogge_stone_scan",
    "ladner_fischer_scan",
    "serial_scan_inplace",
    "serial_scan_registers",
    "inclusive_scan",
    "exclusive_scan",
    "serial_scan_stages",
    "serial_scan_adds",
    "kogge_stone_stages",
    "kogge_stone_adds",
    "ladner_fischer_stages",
    "ladner_fischer_adds",
    "brent_kung_adds",
    "han_carlson_adds",
]
