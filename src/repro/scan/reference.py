"""Host-side scan references and the closed-form operation counts.

:func:`inclusive_scan` / :func:`exclusive_scan` are the numpy golden
references every device scan is tested against (with wrap-around integer
semantics matching CUDA arithmetic).

The ``*_stages`` / ``*_adds`` functions are the closed forms quoted in
Secs. III-C and V-B: e.g. a Kogge-Stone warp scan takes ``log2 N`` stages
and ``sum(N - 2^k)`` additions, a serial scan ``N - 1`` of each, and an
LF-scan ``log2 N`` stages of ``N/2`` additions.  The test suite asserts
that the *measured* instruction counters of the simulated scans equal
these formulas exactly.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "inclusive_scan",
    "exclusive_scan",
    "serial_scan_stages",
    "serial_scan_adds",
    "kogge_stone_stages",
    "kogge_stone_adds",
    "ladner_fischer_stages",
    "ladner_fischer_adds",
    "brent_kung_adds",
    "han_carlson_adds",
]


def inclusive_scan(v: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inclusive prefix sum with CUDA wrap-around semantics.

    numpy promotes small integers before summing; we accumulate in the
    input dtype so 32-bit overflow wraps exactly like device arithmetic.
    """
    v = np.asarray(v)
    with np.errstate(over="ignore"):
        return np.cumsum(v, axis=axis, dtype=v.dtype)


def exclusive_scan(v: np.ndarray, axis: int = -1) -> np.ndarray:
    """Exclusive prefix sum (first element 0)."""
    inc = inclusive_scan(v, axis=axis)
    out = np.zeros_like(inc)
    sl_src = [slice(None)] * inc.ndim
    sl_dst = [slice(None)] * inc.ndim
    sl_src[axis] = slice(None, -1)
    sl_dst[axis] = slice(1, None)
    out[tuple(sl_dst)] = inc[tuple(sl_src)]
    return out


# --- operation-count closed forms (Secs. III-C, V-B) -------------------


def serial_scan_stages(n: int) -> int:
    """A serial scan needs ``N - 1`` dependent stages (Sec. III-C1)."""
    return n - 1


def serial_scan_adds(n: int) -> int:
    """... and ``N - 1`` additions."""
    return n - 1


def kogge_stone_stages(n: int) -> int:
    """``log2 N`` stages (Alg. 3)."""
    return int(math.log2(n))


def kogge_stone_adds(n: int) -> int:
    """``sum over stages of (N - 2^k)`` additions.

    For ``N = 32``: ``31 + 30 + 28 + 24 + 16 = 129`` per row, matching the
    paper's ``N_KoggeStone_add = (31+30+28+24+16) * C`` for ``C`` rows.
    """
    return sum(n - (1 << k) for k in range(int(math.log2(n))))


def ladner_fischer_stages(n: int) -> int:
    """``log2 N`` stages (Alg. 4 / Sklansky construction)."""
    return int(math.log2(n))


def ladner_fischer_adds(n: int) -> int:
    """``(N/2) * log2 N`` additions — 16 per stage for a 32-wide warp."""
    return (n // 2) * int(math.log2(n))


def brent_kung_adds(n: int) -> int:
    """``2N - 2 - log2 N`` additions (up-sweep plus inclusive down-sweep)."""
    return 2 * n - 2 - int(math.log2(n))


def han_carlson_adds(n: int) -> int:
    """Pair stage + Kogge-Stone over odd lanes + final even fix-up."""
    half = n // 2
    # pair stage: n/2 adds; KS over odds at distances 2,4,...,n/2 counts the
    # odd lanes >= d; final stage: n/2 - 1 adds.
    total = half
    d = 2
    while d < n:
        total += sum(1 for lane in range(1, n, 2) if lane >= d)
        d *= 2
    total += half - 1
    return total
