"""Alg. 2 — the intra-thread serial scan.

A naive serial scan "performed by a single thread" is the least efficient
way to scan one vector (Sec. III-C1), but it is the paper's key weapon for
the *second* dimension of a SAT: after the BRLT transpose every thread
holds one logical row in its 32 registers, so the row prefix sum is 31
dependent additions with **zero** inter-thread communication and zero
thread divergence (Sec. V-B3, ``N_scan_col_stage = C - 1 = 31``,
``L_scan_col = 31 * 6 = 186`` clocks on P100).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..gpusim.block import KernelContext
from ..gpusim.regfile import RegArray, RegBank

__all__ = ["serial_scan_registers", "serial_scan_inplace", "serial_scan_bank"]


def serial_scan_registers(
    ctx: KernelContext, regs: List[RegArray], carry: Optional[RegArray] = None
) -> List[RegArray]:
    """Inclusive scan across a thread's register array (Alg. 2).

    ``regs[i]`` plays the role of ``V[i]``; every lane of every warp runs
    its own independent serial scan, which is exactly the SIMT execution
    the paper exploits.  An optional ``carry`` register (the running total
    from the previous tile strip) is added to the first element.

    Returns a new register list; ``N-1`` additions per thread (plus one
    for the carry).
    """
    out: List[RegArray] = list(regs)
    if carry is not None:
        out[0] = out[0] + carry
    for i in range(1, len(out)):
        out[i] = out[i] + out[i - 1]
    return out


def serial_scan_inplace(ctx: KernelContext, regs: List[RegArray]) -> None:
    """In-place variant used where kernels mutate their register cache."""
    for i in range(1, len(regs)):
        regs[i] = regs[i] + regs[i - 1]


def serial_scan_bank(
    ctx: KernelContext, bank: RegBank, carry: Optional[RegArray] = None
) -> RegBank:
    """Fused Alg. 2 over a whole register bank (one numpy dispatch).

    ``np.add.accumulate`` is defined sequentially (``r[i] = r[i-1] + a[i]``),
    so the result is bit-identical to the per-register loop of
    :func:`serial_scan_registers`, and ``N - 1`` adds per thread are
    counted exactly as the loop would have.
    """
    a = bank.a
    if carry is not None:
        rhs = carry.a[..., None] if isinstance(carry, RegArray) else carry
        first = a[..., :1] + rhs
        ctx._count_alu("adds", first.dtype)
        a = np.concatenate([first, a[..., 1:]], axis=-1)
    out = np.add.accumulate(a, axis=-1)
    ctx._count_alu("adds", out.dtype, repeat=bank.nregs - 1)
    return RegBank(ctx, out)
