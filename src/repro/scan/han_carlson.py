"""Han-Carlson warp scan (Sec. III-C2 reference pattern [51]).

The Brent-Kung / Kogge-Stone hybrid: one pairing stage, a Kogge-Stone
scan over the odd lanes, and one final fix-up stage for the even lanes.
``log2 N + 1`` stages with roughly half of Kogge-Stone's additions.
Included as one of the CUDA-optimised scan patterns of Dieguez et al.
[44]; the SAT drivers accept it anywhere a parallel warp scan is used.
"""

from __future__ import annotations

from ..gpusim.block import KernelContext
from ..gpusim.regfile import RegArray

__all__ = ["han_carlson_scan"]


def han_carlson_scan(ctx: KernelContext, data: RegArray, width: int = 32) -> RegArray:
    """Inclusive Han-Carlson scan of one register across the warp's lanes."""
    lane = ctx.lane_id() % width
    odd = (lane & 1) == 1

    # Pairing stage: odd lanes absorb their left neighbour.
    val = ctx.shfl_up(data, 1, width)
    data = data.add_where(odd, val)

    # Kogge-Stone among odd lanes (distances 2, 4, ..., width/2).
    d = 2
    while d < width:
        val = ctx.shfl_up(data, d, width)
        data = data.add_where(odd & (lane >= d), val)
        d *= 2

    # Fix-up: even lanes (except 0) add the inclusive sum one lane below.
    val = ctx.shfl_up(data, 1, width)
    data = data.add_where((~odd) & (lane >= 1), val)
    return data
