"""Block-level shared-memory scan (the scratchpad pattern, Sec. II).

The conventional GPU scan the paper positions against: a Hillis-Steele
scan across a whole thread block, staged through shared memory with a
barrier per stage.  Both library baselines are built on it — OpenCV's
generic ``horisontal_pass`` and NPP's ``scanRow``/``scanCol`` — so it
lives here as a shared, tested component.

Cost profile per ``n``-element chunk: ``log2 n`` stages, each a dependent
shared-memory read + predicated add + write + two barriers — the latency-
and scratchpad-traffic budget that register-cache kernels eliminate.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..gpusim.block import KernelContext
from ..gpusim.regfile import RegArray
from ..gpusim.shared_mem import SharedMem

__all__ = ["alloc_block_scan_smem", "block_scan_with_carry"]


def alloc_block_scan_smem(ctx: KernelContext, dtype, name: str = "sMemScan") -> SharedMem:
    """One shared-memory word per thread of the block."""
    return ctx.alloc_shared((ctx.threads_per_block,), dtype, name=name)


def block_scan_with_carry(
    ctx: KernelContext,
    smem: SharedMem,
    x: RegArray,
    tid: np.ndarray,
    carry: RegArray,
) -> Tuple[RegArray, RegArray]:
    """Inclusive Hillis-Steele scan of one value per thread, plus carry.

    ``carry`` (the running total of previous chunks) is injected into
    thread 0 before the scan and propagates with it; the new carry (the
    block total) is broadcast back from the last slot.

    Returns ``(scanned, new_carry)``.
    """
    n = ctx.threads_per_block
    x = x.add_where(tid == 0, carry)
    smem.store((tid,), x)
    ctx.syncthreads()
    d = 1
    while d < n:
        # Each stage's read depends on the previous stage's writes from
        # other warps: full shared-memory latency on the chain.
        val = smem.load((np.clip(tid - d, 0, n - 1),), dependent=True)
        ctx.syncthreads()
        x = x.add_where(tid >= d, val)
        smem.store((tid,), x)
        ctx.syncthreads()
        d *= 2
    new_carry = smem.load((np.full_like(tid, n - 1),))
    # The carry broadcast must complete before the next chunk's stores
    # reuse the buffer (WAR hazard): every thread reads slot n-1 here,
    # and thread n-1 overwrites it first thing next chunk.
    ctx.syncthreads()
    return x, new_carry
