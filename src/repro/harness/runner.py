"""Experiment runner: sweeps over algorithm x device x pair x size.

Executing the simulator at 16k x 16k for every point of Figs. 6-7 would
take hours of host time for no information gain — the kernels are
tile-homogeneous (DESIGN.md Sec. 5).  The runner therefore:

1. fully *executes* each (algorithm, pair, device) configuration once at a
   calibration size (default 1024x1024), validating the output against the
   serial reference while collecting exact event counters;
2. *projects* the counters to every requested size with the per-kernel
   scaling descriptors below and re-times them through the cost model.

``full_sim=True`` bypasses projection for spot checks; the test suite
asserts projection == full execution on sizes it can afford.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dtypes import parse_pair
from ..exec.config import ExecutionConfig, execution
from ..gpusim.cost.projection import PassScaling, project_stats
from ..gpusim.device import get_device
from ..gpusim.launch import LaunchStats
from ..obs.metrics import get_metrics
from ..obs.trace import current_tracer
from ..sat.api import ALGORITHMS
from ..sat.naive import sat_reference
from ..workloads.generators import random_matrix

__all__ = ["ALGO_SCALING", "MeasuredPoint", "Runner"]

#: Per-kernel scaling of each algorithm's launch sequence, in launch order.
#: ``blocks_along``: which input dimension the grid grows with;
#: ``chain_along``: which dimension the per-block serial loop walks.
ALGO_SCALING: Dict[str, List[PassScaling]] = {
    "brlt_scanrow": [
        PassScaling(blocks_along="H", chain_along="W", grid_axis="y"),
        PassScaling(blocks_along="W", chain_along="H", grid_axis="y"),
    ],
    "scanrow_brlt": [
        PassScaling(blocks_along="H", chain_along="W", grid_axis="y"),
        PassScaling(blocks_along="W", chain_along="H", grid_axis="y"),
    ],
    "scan_row_column": [
        PassScaling(blocks_along="H", chain_along="W", grid_axis="y"),
        PassScaling(blocks_along="W", chain_along="H", grid_axis="x"),
    ],
    "opencv": [
        PassScaling(blocks_along="H", chain_along="W", grid_axis="y"),
        PassScaling(blocks_along="W", chain_along="H", grid_axis="x"),
    ],
    "npp": [
        PassScaling(blocks_along="H", chain_along="W", grid_axis="y"),
        PassScaling(blocks_along="W", chain_along="H", grid_axis="x"),
    ],
    "bilgic": [
        PassScaling(blocks_along="H", chain_along="W", grid_axis="y"),
        PassScaling(blocks_along="HW", chain_along="const", grid_axis="x"),
        PassScaling(blocks_along="W", chain_along="H", grid_axis="y"),
        PassScaling(blocks_along="HW", chain_along="const", grid_axis="x"),
    ],
}


@dataclass
class MeasuredPoint:
    """One (algorithm, pair, device, size) measurement."""

    algorithm: str
    pair: str
    device: str
    size: Tuple[int, int]
    launches: List[LaunchStats] = field(default_factory=list)
    projected: bool = False

    @property
    def time_s(self) -> float:
        return sum(s.time_s for s in self.launches)

    @property
    def time_us(self) -> float:
        return self.time_s * 1e6

    def kernel_times_us(self) -> List[Tuple[str, float]]:
        return [(s.name, s.time_us) for s in self.launches]


class Runner:
    """Caches calibration runs and projects them across a size sweep."""

    def __init__(self, calibration: int = 1024, validate: bool = True, seed: int = 7,
                 config: Optional[ExecutionConfig] = None):
        self.calibration = calibration
        self.validate = validate
        self.seed = seed
        #: Optional :class:`~repro.exec.ExecutionConfig` scoped over every
        #: calibration run (e.g. ``ExecutionConfig(fused=False)`` to sweep
        #: the legacy path).  ``None`` uses the ambient resolution.
        self.config = config
        self._cache: Dict[tuple, MeasuredPoint] = {}

    @property
    def metrics(self):
        """The process-wide :class:`~repro.obs.metrics.MetricsRegistry`.

        Calibrations and projections increment ``runner.calibrations`` /
        ``runner.projections`` here, alongside the simulator and engine
        counters the sweep's sat calls produce.
        """
        return get_metrics()

    # ------------------------------------------------------------------
    def _calibrate(self, algorithm: str, pair: str, device: str,
                   size: Tuple[int, int], **opts) -> MeasuredPoint:
        key = (algorithm, pair, device, size, tuple(sorted(opts.items())))
        if key in self._cache:
            return self._cache[key]
        tp = parse_pair(pair)
        dev = get_device(device)
        img = random_matrix(size, tp.input, seed=self.seed)
        get_metrics().counter("runner.calibrations", algorithm=algorithm).inc()
        tracer = current_tracer()
        with (tracer.span(f"calibrate:{algorithm}", category="calibrate",
                          algorithm=algorithm, pair=tp.name, device=dev.name,
                          size=size, validate=self.validate)
              if tracer is not None else nullcontext()), \
                execution(self.config or ExecutionConfig()):
            run = ALGORITHMS[algorithm](img, pair=tp, device=dev, **opts)
        if self.validate:
            ref = sat_reference(img, tp)
            if np.issubdtype(ref.dtype, np.floating):
                if not np.allclose(run.output, ref, rtol=1e-3, atol=1e-1):
                    raise AssertionError(
                        f"{algorithm}/{tp.name} wrong at calibration size {size}"
                    )
            elif not np.array_equal(run.output, ref):
                raise AssertionError(
                    f"{algorithm}/{tp.name} wrong at calibration size {size}"
                )
        point = MeasuredPoint(
            algorithm=algorithm, pair=tp.name, device=dev.name,
            size=size, launches=run.launches,
        )
        self._cache[key] = point
        return point

    # ------------------------------------------------------------------
    def measure(self, algorithm: str, pair: str, device: str,
                size, full_sim: bool = False, **opts) -> MeasuredPoint:
        """Modeled timing of one configuration at ``size`` (int = square)."""
        if isinstance(size, int):
            size = (size, size)
        cal = min(self.calibration, size[0]), min(self.calibration, size[1])
        if full_sim or size == cal:
            return self._calibrate(algorithm, pair, device, size, **opts)
        base = self._calibrate(algorithm, pair, device, cal, **opts)
        scalings = ALGO_SCALING[algorithm]
        if len(scalings) != len(base.launches):
            raise RuntimeError(
                f"{algorithm}: {len(base.launches)} kernels but "
                f"{len(scalings)} scaling descriptors"
            )
        get_metrics().counter("runner.projections", algorithm=algorithm).inc()
        launches = [
            project_stats(stats, cal, size, scal)
            for stats, scal in zip(base.launches, scalings)
        ]
        return MeasuredPoint(
            algorithm=algorithm, pair=base.pair, device=base.device,
            size=size, launches=launches, projected=True,
        )

    # ------------------------------------------------------------------
    def sweep(self, algorithms, pairs, sizes, device="P100",
              baseline: Optional[str] = "opencv", **opts) -> List[dict]:
        """Grid sweep; returns flat result rows with speedups vs ``baseline``.

        Algorithms that do not support a pair (e.g. NPP beyond 8u32s/8u32f)
        are skipped silently, like the gaps in the paper's figures.
        """
        rows: List[dict] = []
        for pair in pairs:
            for size in sizes:
                base_time = None
                if baseline:
                    base_time = self.measure(baseline, pair, device, size, **opts).time_us
                for algo in algorithms:
                    try:
                        pt = self.measure(algo, pair, device, size, **opts)
                    except ValueError:
                        continue  # unsupported pair for this library
                    rows.append({
                        "device": device,
                        "pair": pair,
                        "size": size if isinstance(size, int) else size[0],
                        "algorithm": algo,
                        "time_us": pt.time_us,
                        "speedup_vs_baseline": (
                            base_time / pt.time_us if base_time else float("nan")
                        ),
                    })
        return rows
