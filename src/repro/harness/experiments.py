"""One entry point per table and figure of the paper (DESIGN.md Sec. 4).

Every function returns ``{"rows": [...], "text": "..."}``: structured data
plus the formatted report the benchmarks print and EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines.npp_sat import NPP_KERNEL_TABLE, NPP_SUPPORTED_PAIRS
from ..gpusim.device import DEVICES, get_device
from ..gpusim.microbench import measure_latencies, measure_throughputs
from ..perfmodel.equations import WarpTileModel
from ..perfmodel.verification import (
    verify_fig8_inequalities,
    verify_warp_tile_counts,
)
from .runner import Runner
from .tables import format_series, format_table

__all__ = [
    "FIG67_SIZES",
    "FIG67_PAIRS",
    "FIG8_SIZES",
    "table1",
    "table2",
    "microbench",
    "model_equations",
    "fig6",
    "fig7",
    "fig8",
    "model_verification",
    "headline",
    "ablation_scan_variant",
    "ablation_brlt_stride",
    "batch_throughput",
]

#: Matrix sides for the Fig. 6/7 sweeps (the paper's 1k^2 .. 16k^2).
FIG67_SIZES: List[int] = [1024, 2048, 3072, 4096, 6144, 8192, 12288, 16384]
#: Type pairs plotted in Figs. 6/7 (8u32s also stands for 8u32u/8u32f,
#: which the paper reports as "nearly the same").
FIG67_PAIRS: List[str] = ["8u32s", "8u32f", "32f32f", "64f64f"]
#: Fig. 8 plots the per-kernel breakdown from 1k^2 to 4k^2.
FIG8_SIZES: List[int] = [1024, 2048, 3072, 4096]

#: Algorithms plotted in the figures, ours first.
FIG67_ALGOS = ["brlt_scanrow", "scanrow_brlt", "scan_row_column", "opencv", "npp"]


# --------------------------------------------------------------------------
def table1() -> Dict:
    """Table I: shared memory vs. register files per SM."""
    rows = []
    for name in ("M40", "P100", "V100"):
        d = DEVICES[name]
        rows.append({
            "Tesla GPU": d.name,
            "Shared Memory/SM (KB)": d.shared_mem_per_sm // 1024,
            "Registers/SM (KB)": d.registers_per_sm_bytes // 1024,
            "SMs": d.sm_count,
        })
    return {"rows": rows, "text": format_table(rows, title="Table I")}


def table2() -> Dict:
    """Table II: NPP kernel details recovered from the NPP model."""
    rows = [dict(r, blockSize=str(r["blockSize"])) for r in NPP_KERNEL_TABLE]
    return {"rows": rows, "text": format_table(rows, title="Table II (NPP kernels)")}


def microbench(devices: Sequence[str] = ("P100", "V100")) -> Dict:
    """Sec. V-A micro-benchmarks: measured latencies and throughputs."""
    rows = []
    for dev in devices:
        lat = measure_latencies(dev)
        rows.append({
            "device": dev,
            "smem latency (clk)": lat.shared_mem,
            "shuffle latency (clk)": lat.shuffle,
            "add latency (clk)": lat.add,
            "AND latency (clk)": lat.bool_and,
            "gmem latency (clk)": lat.global_mem,
        })
    tp = measure_throughputs(devices[0])
    tp_rows = [{
        "device": devices[0],
        "add ops/clk/SM": tp.add_ops_per_clock,
        "AND ops/clk/SM": tp.bool_ops_per_clock,
        "shuffle ops/clk/SM": tp.shuffle_ops_per_clock,
        "smem BW (GB/s)": tp.shared_bw / 1e9,
    }]
    text = (format_table(rows, title="Sec. V-A latencies (measured on the simulator)")
            + "\n\n" + format_table(tp_rows, title="Pipeline throughputs"))
    return {"rows": rows + tp_rows, "text": text}


def model_equations(devices: Sequence[str] = ("P100", "V100")) -> Dict:
    """Eqs. 3-15 evaluated per device, plus the warp-tile counter check."""
    rows = []
    for dev in devices:
        m = WarpTileModel(get_device(dev))
        rows.append({
            "device": dev,
            "L_transpose (clk)": m.l_transpose,
            "L_scan_row (clk)": m.l_scan_row,
            "L_scan_col (clk)": m.l_scan_col,
            "Eq6 (<<)": m.eq6_holds(),
            "Eq14": m.eq14_holds(),
            "Eq15": m.eq15_holds(),
        })
    counts = verify_warp_tile_counts(devices[0])
    count_rows = [
        {"quantity": k, "measured": v["measured"], "paper": v["paper"],
         "match": v["match"]}
        for k, v in counts.items()
    ]
    text = (format_table(rows, title="Sec. V latency model (Eqs. 3-6, 14-15)")
            + "\n\n" + format_table(count_rows, floatfmt="{:.0f}",
                                    title="Warp-tile operation counts vs. paper"))
    return {"rows": rows, "count_rows": count_rows, "text": text}


# --------------------------------------------------------------------------
def _fig67(device: str, runner: Optional[Runner], sizes, pairs) -> Dict:
    runner = runner or Runner()
    rows = runner.sweep(FIG67_ALGOS, pairs, sizes, device=device, baseline="opencv")
    sections = []
    for pair in pairs:
        sub = [r for r in rows if r["pair"] == pair]
        sections.append(format_series(
            sub, x="size", series="algorithm", y="time_us",
            title=f"[{device} {pair}] execution time (us)"))
        sections.append(format_series(
            sub, x="size", series="algorithm", y="speedup_vs_baseline",
            title=f"[{device} {pair}] speedup vs OpenCV"))
    return {"rows": rows, "text": "\n\n".join(sections)}


def fig6(runner: Optional[Runner] = None, sizes=None, pairs=None) -> Dict:
    """Fig. 6: speedup and execution time on Tesla P100."""
    return _fig67("P100", runner, sizes or FIG67_SIZES, pairs or FIG67_PAIRS)


def fig7(runner: Optional[Runner] = None, sizes=None, pairs=None) -> Dict:
    """Fig. 7: speedup and execution time on Tesla V100."""
    return _fig67("V100", runner, sizes or FIG67_SIZES, pairs or FIG67_PAIRS)


def fig8(runner: Optional[Runner] = None, device: str = "P100",
         sizes=None, pair: str = "32f32f") -> Dict:
    """Fig. 8: per-kernel breakdown (1st and 2nd scan) for 32f32f."""
    runner = runner or Runner()
    sizes = sizes or FIG8_SIZES
    rows = []
    for size in sizes:
        for algo in ("brlt_scanrow", "scanrow_brlt", "scan_row_column"):
            pt = runner.measure(algo, pair, device, size)
            for idx, (kname, t) in enumerate(pt.kernel_times_us()):
                rows.append({
                    "size": size,
                    "kernel": kname,
                    "pass": idx + 1,
                    "time_us": t,
                })
    text = format_series(rows, x="size", series="kernel", y="time_us",
                         title=f"Fig. 8: {pair} kernel breakdown on {device} (us)")
    return {"rows": rows, "text": text}


def model_verification(device: str = "P100", sizes=None) -> Dict:
    """Sec. VI-D: the three kernel-time inequalities at each Fig. 8 size."""
    sizes = sizes or FIG8_SIZES[:2]
    rows = []
    for size in sizes:
        v = verify_fig8_inequalities(size, device)
        rows.append({
            "size": size,
            "T_BRLT-ScanRow": v.t_brlt_scanrow,
            "T_ScanRow-BRLT": v.t_scanrow_brlt,
            "T_ScanRow": v.t_scanrow,
            "T_ScanColumn": v.t_scancolumn,
            "(1) ScanCol<BRLT-SR": v.check1_scancol_lt_brlt_scanrow,
            "(2) BRLT pays": v.check2_brlt_pays_off,
            "(3) serial wins": v.check3_serial_beats_parallel,
        })
    return {"rows": rows, "text": format_table(
        rows, title=f"Sec. VI-D model verification on {device}")}


def headline(runner: Optional[Runner] = None, devices=("P100", "V100")) -> Dict:
    """The abstract's claim: max speedup over OpenCV and over NPP."""
    runner = runner or Runner()
    rows = []
    for device in devices:
        best_cv, best_npp = 0.0, 0.0
        arg_cv = arg_npp = ""
        for pair in FIG67_PAIRS:
            for size in FIG67_SIZES:
                ours = runner.measure("brlt_scanrow", pair, device, size).time_us
                cv = runner.measure("opencv", pair, device, size).time_us
                if cv / ours > best_cv:
                    best_cv, arg_cv = cv / ours, f"{pair}@{size}"
                if pair in NPP_SUPPORTED_PAIRS:
                    npp = runner.measure("npp", pair, device, size).time_us
                    if npp / ours > best_npp:
                        best_npp, arg_npp = npp / ours, f"{pair}@{size}"
        rows.append({
            "device": device,
            "max speedup vs OpenCV": best_cv,
            "at": arg_cv,
            "max speedup vs NPP": best_npp,
            "at ": arg_npp,
        })
    text = format_table(rows, title="Headline speedups (paper: 2.3x OpenCV, 3.2x NPP)")
    return {"rows": rows, "text": text}


def batch_throughput(device: str = "P100", n_images: int = 32,
                     sizes=None, pair: str = "8u32s",
                     algorithm: str = "brlt_scanrow") -> Dict:
    """Batched-engine throughput: ``sat_batch`` vs. looped ``sat()``.

    Not a paper figure — the serving-regime extension: repeated-shape
    batches through the execution engine amortise per-launch fixed costs
    (plan cache + stacked launches), which is the batch analogue of the
    launch overheads the paper amortises on hardware.
    """
    import numpy as np

    from ..engine import Engine

    sizes = sizes or [128, 256, 512]
    rows = []
    for size in sizes:
        rng = np.random.default_rng(0)
        imgs = [rng.integers(0, 256, (size, size)).astype(np.uint8)
                for _ in range(n_images)]
        run = Engine().run_batch(imgs, pair=pair, algorithm=algorithm,
                                 device=device)
        rows.append({
            "size": size,
            "images": n_images,
            "modeled img/s": run.images_per_s,
            "eff GB/s": run.effective_gbps,
            "speedup vs seq": run.speedup_vs_sequential,
            "plan hit rate": run.plan_hit_rate,
        })
    return {"rows": rows, "text": format_table(
        rows, title=(f"Batched engine throughput ({algorithm}, {pair}, "
                     f"{device}, {n_images} images/batch)"))}


def ablation_scan_variant(runner: Optional[Runner] = None, device: str = "P100",
                          sizes=None, pair: str = "32f32f") -> Dict:
    """Sec. VI-C1: Kogge-Stone vs. LF-scan (and the other warp scans)."""
    runner = runner or Runner()
    sizes = sizes or [1024, 4096]
    rows = []
    for scan in ("kogge_stone", "ladner_fischer", "brent_kung", "han_carlson"):
        for size in sizes:
            pt = runner.measure("scanrow_brlt", pair, device, size, scan=scan)
            rows.append({"scan": scan, "size": size, "time_us": pt.time_us})
    text = format_series(rows, x="size", series="scan", y="time_us",
                         title=f"Warp-scan variant ablation (ScanRow-BRLT, {pair}, {device})")
    return {"rows": rows, "text": text}


def ablation_brlt_stride(runner: Optional[Runner] = None, device: str = "P100",
                         sizes=None, pair: str = "32f32f") -> Dict:
    """Alg. 5 line 2: stride-33 (conflict-free) vs stride-32 staging."""
    runner = runner or Runner()
    sizes = sizes or [1024, 4096]
    rows = []
    for stride in (33, 32):
        for size in sizes:
            # The stride-32 variant deliberately provokes 32-way bank
            # conflicts to measure their cost; the sanitizer would (rightly)
            # flag them as a hazard, so it is disabled for the ablation.
            pt = runner.measure("brlt_scanrow", pair, device, size,
                                brlt_stride=stride, sanitize=False)
            replays = sum(s.counters.smem_bank_conflict_replays for s in pt.launches)
            rows.append({
                "stride": stride,
                "size": size,
                "time_us": pt.time_us,
                "bank_conflict_replays": replays,
            })
    return {"rows": rows, "text": format_table(
        rows, title=f"BRLT staging-stride ablation ({pair}, {device})")}
