"""Plain-text table and series formatting for the experiment reports.

The paper reports figures (speedup / time vs. size curves) and tables;
the benchmarks print the same content as aligned ASCII so the rows can be
compared against the paper directly in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "pivot_series", "format_series"]


def format_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None,
                 floatfmt: str = "{:.2f}", title: str = "") -> str:
    """Align a list of dict rows into a monospaced table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())

    def cell(v) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    grid = [[cell(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(g[i]) for g in grid)) for i, c in enumerate(cols)]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    body = "\n".join(" | ".join(v.rjust(w) for v, w in zip(g, widths)) for g in grid)
    out = f"{header}\n{sep}\n{body}"
    return f"{title}\n{out}" if title else out


def pivot_series(rows: Sequence[dict], x: str, series: str, y: str) -> Dict[str, List]:
    """Pivot flat rows into ``{series_value: [(x, y), ...]}`` curves."""
    out: Dict[str, List] = {}
    for r in rows:
        out.setdefault(str(r[series]), []).append((r[x], r[y]))
    for curve in out.values():
        curve.sort()
    return out


def format_series(rows: Sequence[dict], x: str, series: str, y: str,
                  floatfmt: str = "{:.2f}", title: str = "") -> str:
    """Print curves as one row per series and one column per x value —
    the textual equivalent of one subplot of Figs. 6-8."""
    curves = pivot_series(rows, x, series, y)
    xs = sorted({r[x] for r in rows})
    table_rows = []
    for name, pts in curves.items():
        by_x = dict(pts)
        row = {series: name}
        for xv in xs:
            row[str(xv)] = by_x.get(xv, float("nan"))
        table_rows.append(row)
    return format_table(table_rows, columns=[series] + [str(v) for v in xs],
                        floatfmt=floatfmt, title=title)
