"""Experiment harness regenerating every table and figure of the paper."""

from .runner import ALGO_SCALING, MeasuredPoint, Runner
from .tables import format_series, format_table, pivot_series
from . import experiments

__all__ = [
    "ALGO_SCALING",
    "MeasuredPoint",
    "Runner",
    "format_series",
    "format_table",
    "pivot_series",
    "experiments",
]
