"""Model verification: Sec. V-C and Sec. VI-D, measured vs. closed form.

Two layers of checks:

1. **Counter-level** (:func:`verify_warp_tile_counts`): run each scan
   variant on a single simulated warp-tile and compare the *measured*
   instruction/transaction counters against the Sec.-V closed forms —
   they must match exactly.

2. **Kernel-level** (:func:`verify_fig8_inequalities`): run the four
   kernels of Fig. 8 on a real matrix and check the paper's Sec. VI-D
   conclusions on the modeled times:

   * (1) ``T_ScanColumn < T_BRLT-ScanRow`` — BRLT is the overhead;
   * (2) ``2 * T_BRLT-ScanRow < T_ScanRow + T_ScanColumn`` — BRLT pays off
     end-to-end;
   * (3) the serial warp-scan beats the shuffle-based parallel scan, i.e.
     ``T_BRLT-ScanRow <= T_ScanRow-BRLT``.  (The paper's text prints this
     inequality with the opposite sign, contradicting both its own Sec.-V
     model and its "our fastest algorithm" conclusion — a typo we record
     in EXPERIMENTS.md and verify in the corrected direction.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..dtypes import parse_pair
from ..gpusim.device import get_device
from ..gpusim.global_mem import GlobalArray
from ..gpusim.launch import launch_kernel
from ..sat.brlt import alloc_brlt_smem, brlt_transpose
from ..sat.brlt_scanrow import sat_brlt_scanrow
from ..sat.scan_row_column import sat_scan_row_column
from ..sat.scanrow_brlt import sat_scanrow_brlt
from ..scan import WARP_SCANS
from ..scan.serial import serial_scan_registers
from . import equations as eq

__all__ = [
    "WarpTileCounts",
    "measure_warp_tile",
    "verify_warp_tile_counts",
    "Fig8Verification",
    "verify_fig8_inequalities",
]


@dataclass
class WarpTileCounts:
    """Measured per-warp-tile event counts for one scan variant."""

    variant: str
    adds: float
    bools: float
    shuffles_lane: float
    smem_transactions: float
    bank_conflict_replays: float


def _tile_kernel(variant: str):
    """Build a single-warp kernel processing one 32x32 register tile."""

    def kernel(ctx, src: GlobalArray, dst: GlobalArray):
        lane = ctx.lane_id()
        data = [src.load(ctx, j, lane) for j in range(32)]
        if variant == "serial_after_brlt":
            smem = alloc_brlt_smem(ctx, src.dtype)
            data = brlt_transpose(ctx, data, smem)
            data = serial_scan_registers(ctx, data)
        elif variant == "brlt_only":
            smem = alloc_brlt_smem(ctx, src.dtype)
            data = brlt_transpose(ctx, data, smem)
        elif variant == "serial_only":
            data = serial_scan_registers(ctx, data)
        else:
            scan = WARP_SCANS[variant]
            data = [scan(ctx, d) for d in data]
        for j in range(32):
            dst.store(ctx, j, lane, value=data[j])

    return kernel


def measure_warp_tile(variant: str, device="P100") -> WarpTileCounts:
    """Run one warp-tile through ``variant`` and collect its counters.

    The tile's global load/store traffic is subtracted out so the counts
    isolate the scan itself, matching the paper's per-tile accounting.
    """
    dev = get_device(device)
    rng = np.random.default_rng(0)
    src = GlobalArray(rng.integers(0, 100, (32, 32)).astype(np.int32), "tile")
    dst = GlobalArray.empty((32, 32), np.int32, "tile_out")
    stats = launch_kernel(
        _tile_kernel(variant),
        device=dev,
        grid=1,
        block=32,
        regs_per_thread=48,
        args=(src, dst),
        name=f"tile_{variant}",
    )
    c = stats.counters
    return WarpTileCounts(
        variant=variant,
        adds=c.adds,
        bools=c.bools,
        shuffles_lane=c.shuffles,
        smem_transactions=c.smem_transactions,
        bank_conflict_replays=c.smem_bank_conflict_replays,
    )


def verify_warp_tile_counts(device="P100") -> Dict[str, dict]:
    """Measured warp-tile counters vs. the Sec.-V closed forms.

    Returns a report dict; every entry carries ``measured``, ``paper`` and
    ``match``.
    """
    report: Dict[str, dict] = {}

    ks = measure_warp_tile("kogge_stone", device)
    report["N_KoggeStone_add"] = {
        "measured": ks.adds,
        "paper": eq.n_kogge_stone_add(),
        "match": ks.adds == eq.n_kogge_stone_add(),
    }
    report["N_scan_row_sfl"] = {
        # The paper counts warp-level shuffle instructions.
        "measured": ks.shuffles_lane / 32,
        "paper": eq.n_scan_row_sfl(),
        "match": ks.shuffles_lane / 32 == eq.n_scan_row_sfl(),
    }

    lf = measure_warp_tile("ladner_fischer", device)
    report["N_LF_add"] = {
        "measured": lf.adds,
        "paper": eq.n_lf_add(),
        "match": lf.adds == eq.n_lf_add(),
    }

    ser = measure_warp_tile("serial_only", device)
    report["N_scan_col_add"] = {
        "measured": ser.adds,
        "paper": eq.n_scan_col_add(),
        "match": ser.adds == eq.n_scan_col_add(),
    }

    brlt = measure_warp_tile("brlt_only", device)
    n_trans = eq.n_trans_store_smem() + eq.n_trans_load_smem()
    report["N_trans_smem"] = {
        # Counter unit is warp transactions; the paper counts lane accesses.
        "measured": brlt.smem_transactions * 32,
        "paper": n_trans,
        "match": brlt.smem_transactions * 32 == n_trans,
    }
    report["BRLT_bank_conflicts"] = {
        "measured": brlt.bank_conflict_replays,
        "paper": 0,
        "match": brlt.bank_conflict_replays == 0,
    }
    return report


@dataclass
class Fig8Verification:
    """Kernel times (us) underlying the Sec. VI-D checks."""

    device: str
    size: int
    t_brlt_scanrow: float
    t_scanrow_brlt: float
    t_scanrow: float
    t_scancolumn: float

    @property
    def check1_scancol_lt_brlt_scanrow(self) -> bool:
        """VI-D (1): ``T_ScanColumn < T_BRLT-ScanRow`` (BRLT is overhead)."""
        return self.t_scancolumn < self.t_brlt_scanrow

    @property
    def check2_brlt_pays_off(self) -> bool:
        """VI-D (2): ``2*T_BRLT-ScanRow < T_ScanRow + T_ScanColumn``."""
        return 2 * self.t_brlt_scanrow < self.t_scanrow + self.t_scancolumn

    @property
    def check3_serial_beats_parallel(self) -> bool:
        """VI-D (3), corrected direction: serial scan kernel is faster."""
        return self.t_brlt_scanrow <= self.t_scanrow_brlt

    def all_hold(self) -> bool:
        return (
            self.check1_scancol_lt_brlt_scanrow
            and self.check2_brlt_pays_off
            and self.check3_serial_beats_parallel
        )


def verify_fig8_inequalities(size: int = 1024, device="P100",
                             pair="32f32f") -> Fig8Verification:
    """Run the four Fig.-8 kernels at ``size`` and evaluate Sec. VI-D."""
    dev = get_device(device)
    tp = parse_pair(pair)
    rng = np.random.default_rng(0)
    img = rng.standard_normal((size, size)).astype(tp.input.np_dtype)

    brlt_sr = sat_brlt_scanrow(img, pair=tp, device=dev)
    sr_brlt = sat_scanrow_brlt(img, pair=tp, device=dev)
    src = sat_scan_row_column(img, pair=tp, device=dev)

    return Fig8Verification(
        device=dev.name,
        size=size,
        t_brlt_scanrow=brlt_sr.launches[0].time_us,
        t_scanrow_brlt=sr_brlt.launches[0].time_us,
        t_scanrow=src.launches[0].time_us,
        t_scancolumn=src.launches[1].time_us,
    )
