"""Closed forms of the Sec.-V performance model (Eqs. 3-15).

Every quantity the paper derives by hand for a single warp processing one
32x32 register matrix, as explicit functions of the device constants, so
the model-verification benchmarks can print the paper's numbers next to
the simulator's measured counters:

=====================  =============================  =============
quantity               formula                        P100 value
=====================  =============================  =============
N_trans_smem           32*32 stores + 32*32 loads     1024 + 1024
L_transpose (Eq. 3)    64 stages * smem latency       2304 clk
N_scan_row_stage       log2(32) * C                   160
N_KoggeStone_add       (31+30+28+24+16) * C           4128
N_LF_add               16*5 * 32                      2560
N_scan_row_sfl         = N_scan_row_stage             160
L_scan_row (Eq. 4)     160 * (33 + 6)                 6240 clk
N_scan_col_stage       C - 1                          31
N_scan_col_add         32 * 31                        992
L_scan_col (Eq. 5)     31 * 6                         186 clk
=====================  =============================  =============

plus the throughput-side Eqs. 10-13 and the two conclusions
(Eq. 6: ``L_transpose + L_scan_col << L_scan_row``; Eqs. 14-15: the
transpose-plus-serial-scan time is far below either parallel scan).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.device import DeviceSpec, P100

__all__ = [
    "C",
    "WARP_SIZE",
    "n_trans_store_smem",
    "n_trans_load_smem",
    "transpose_stages",
    "latency_transpose",
    "n_scan_row_stage",
    "n_kogge_stone_add",
    "n_lf_add",
    "n_lf_and",
    "n_scan_row_sfl",
    "latency_scan_row",
    "n_scan_col_stage",
    "n_scan_col_add",
    "latency_scan_col",
    "time_transpose",
    "time_scan_col_add",
    "time_shuffle",
    "time_kogge_stone_add",
    "time_lf_add",
    "WarpTileModel",
]

#: Elements cached per thread (Sec. IV-1).
C = 32
#: Threads per warp, constant across all Nvidia generations.
WARP_SIZE = 32


# --- operation counts (Sec. V-B) ------------------------------------------


def n_trans_store_smem() -> int:
    """Shared-memory stores to stage one 32x32 register matrix: 1024."""
    return 32 * 32


def n_trans_load_smem() -> int:
    """Shared-memory loads to read the transposed matrix back: 1024."""
    return 32 * 32


def transpose_stages() -> int:
    """``N_stages = C + C = 64`` (store phase + load phase)."""
    return C + C


def latency_transpose(device: DeviceSpec = P100) -> float:
    """Eq. 3: ``64 * smem latency`` (2304 clk on P100, 1728 on V100)."""
    return transpose_stages() * device.shared_mem_latency


def n_scan_row_stage() -> int:
    """``log2(WarpSize) * C = 160`` parallel-scan stages for 32 rows."""
    return 5 * C


def n_kogge_stone_add() -> int:
    """``(31+30+28+24+16) * C = 4128`` additions (Sec. V-B2)."""
    return (31 + 30 + 28 + 24 + 16) * C


def n_lf_add() -> int:
    """``(16+16+16+16+16) * 32 = 2560`` additions for LF-scan."""
    return (16 * 5) * 32


def n_lf_and() -> int:
    """``WarpSize * stages-per-row * C = 5120`` boolean guards (Alg. 4)."""
    return (WARP_SIZE * 5) * C


def n_scan_row_sfl() -> int:
    """One shuffle per stage: 160."""
    return n_scan_row_stage()


def latency_scan_row(device: DeviceSpec = P100) -> float:
    """Eq. 4: ``160 * (shuffle latency + add latency)`` = 6240 clk on P100."""
    return n_scan_row_stage() * (device.shuffle_latency + device.add_latency)


def n_scan_col_stage() -> int:
    """``C - 1 = 31`` serial-scan stages (Alg. 2)."""
    return C - 1


def n_scan_col_add() -> int:
    """``WarpSize * 31 = 992`` concurrent additions, zero divergence."""
    return WARP_SIZE * n_scan_col_stage()


def latency_scan_col(device: DeviceSpec = P100) -> float:
    """Eq. 5: ``31 * add latency`` = 186 clk on P100."""
    return n_scan_col_stage() * device.add_latency


# --- throughput-side times (Eqs. 10-13), in clocks per SM -----------------


def time_transpose(device: DeviceSpec = P100, elem_size: int = 4) -> float:
    """Eq. 10: staging bytes over the per-SM shared-memory bandwidth."""
    total_bytes = (n_trans_store_smem() + n_trans_load_smem()) * elem_size
    return total_bytes / device.shared_bw_per_sm_clock


def time_scan_col_add(device: DeviceSpec = P100) -> float:
    """Eq. 11: serial-scan additions over the add pipeline."""
    return n_scan_col_add() / device.add_throughput


def time_shuffle(device: DeviceSpec = P100) -> float:
    """Eq. 12: scan-row shuffles over the shuffle pipeline.

    The paper counts warp-level shuffle instructions against the
    32-op/clock pipeline (one warp instruction per clock).
    """
    return n_scan_row_sfl() * WARP_SIZE / device.shuffle_throughput


def time_kogge_stone_add(device: DeviceSpec = P100) -> float:
    """Eq. 13: Kogge-Stone additions over the add pipeline."""
    return n_kogge_stone_add() / device.add_throughput


def time_lf_add(device: DeviceSpec = P100) -> float:
    """LF-scan additions plus its boolean guards (Eq. 15 numerator)."""
    return n_lf_add() / device.add_throughput + n_lf_and() / device.bool_throughput


@dataclass(frozen=True)
class WarpTileModel:
    """All Sec.-V quantities for one device, bundled for reporting."""

    device: DeviceSpec

    @property
    def l_transpose(self) -> float:
        return latency_transpose(self.device)

    @property
    def l_scan_row(self) -> float:
        return latency_scan_row(self.device)

    @property
    def l_scan_col(self) -> float:
        return latency_scan_col(self.device)

    @property
    def t_transpose(self) -> float:
        return time_transpose(self.device)

    @property
    def t_scan_col_add(self) -> float:
        return time_scan_col_add(self.device)

    @property
    def t_shuffle(self) -> float:
        return time_shuffle(self.device)

    @property
    def t_kogge_stone_add(self) -> float:
        return time_kogge_stone_add(self.device)

    @property
    def t_lf_add(self) -> float:
        return time_lf_add(self.device)

    def eq6_holds(self) -> bool:
        """Eq. 6: ``L_transpose + L_scan_col << L_scan_row`` (latency side).

        "Much less" is read as at most half; on P100 the ratio is
        (2304 + 186) / 6240 = 0.40.
        """
        return self.eq6_ratio() < 0.5

    def eq6_ratio(self) -> float:
        return (self.l_transpose + self.l_scan_col) / self.l_scan_row

    def eq14_holds(self) -> bool:
        """Eq. 14: ``T_KS_add + T_shuffle >> T_trans + T_scan_col_add``."""
        return (self.t_kogge_stone_add + self.t_shuffle) > (
            self.t_transpose + self.t_scan_col_add
        )

    def eq15_holds(self) -> bool:
        """Eq. 15: same conclusion for the LF-scan variant."""
        return (self.t_lf_add + self.t_shuffle) > (
            self.t_transpose + self.t_scan_col_add
        )
