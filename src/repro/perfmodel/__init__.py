"""Sec.-V analytic performance model and its verification."""

from .equations import WarpTileModel
from .verification import (
    Fig8Verification,
    WarpTileCounts,
    measure_warp_tile,
    verify_fig8_inequalities,
    verify_warp_tile_counts,
)

__all__ = [
    "WarpTileModel",
    "Fig8Verification",
    "WarpTileCounts",
    "measure_warp_tile",
    "verify_fig8_inequalities",
    "verify_warp_tile_counts",
]
